// lcld — the classification-as-a-service daemon.
//
// Serves the line-delimited JSON protocol of src/service/ in one of
// three transports:
//
//   * --stdio (default): one request per stdin line, one response per
//     stdout line, in order. This is the pipe mode CI and the tests
//     drive (`lcld --stdio < requests.jsonl > responses.jsonl`); EOF
//     drains and exits 0.
//   * --socket PATH: a Unix stream socket.
//   * --tcp HOST:PORT: a TCP listener (PORT 0 = ephemeral; the resolved
//     endpoint is announced on stderr as `tcp://HOST:PORT`).
//
// The socket transports share one poll-based connection supervisor
// (service/transport.*): up to --max-conns concurrent connections, each
// with line framing, a --pipeline-deep in-flight request window through
// the server's bounded admission queue (responses in request order),
// and a bounded per-connection write backlog — a client that stops
// reading stalls only its own connection. SIGTERM/SIGINT trigger a
// graceful drain: stop accepting input, finish everything queued and
// in flight, exit 0.
#include <csignal>
#include <iostream>
#include <string>

#include "service/server.hpp"
#include "service/transport.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--stdio | --socket PATH | --tcp HOST:PORT] [options]\n"
      << "  --stdio           serve stdin/stdout, one JSON line each way"
         " (default)\n"
      << "  --socket PATH     serve a Unix stream socket at PATH\n"
      << "  --tcp HOST:PORT   serve a TCP listener (PORT 0 ="
         " ephemeral)\n"
      << "  --max-conns N     concurrent connection cap (default 256)\n"
      << "  --pipeline N      per-connection in-flight request window"
         " (default 32)\n"
      << "  --cache-mb N      problem-cache byte budget in MiB"
         " (default 64)\n"
      << "  --threads N       worker threads (default 1)\n"
      << "  --max-queue N     admission queue depth (default 256)\n"
      << "  --timeout-ms X    per-request queue-age limit;"
         " < 0 disables (default)\n";
  return 2;
}

int run_stdio(lcl::service::Server& server) {
  std::string line;
  while (g_stop == 0 && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.handle_line(line) << '\n' << std::flush;
  }
  server.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool stdio = true;
  lcl::service::ServerOptions opts;
  lcl::service::TransportOptions topts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--socket" && has_value) {
      stdio = false;
      topts.unix_path = argv[++i];
      topts.tcp_host.clear();
    } else if (arg == "--tcp" && has_value) {
      stdio = false;
      topts.unix_path.clear();
      if (!lcl::service::parse_hostport(argv[++i], topts.tcp_host,
                                        topts.tcp_port)) {
        std::cerr << "lcld: --tcp expects HOST:PORT, got \"" << argv[i]
                  << "\"\n";
        return 2;
      }
    } else if (arg == "--max-conns" && has_value) {
      topts.max_conns = std::stoi(argv[++i]);
    } else if (arg == "--pipeline" && has_value) {
      topts.pipeline_depth = std::stoi(argv[++i]);
    } else if (arg == "--cache-mb" && has_value) {
      opts.cache_bytes =
          static_cast<std::size_t>(std::stoll(argv[++i])) << 20;
    } else if (arg == "--threads" && has_value) {
      opts.threads = std::stoi(argv[++i]);
    } else if (arg == "--max-queue" && has_value) {
      opts.max_queue = std::stoi(argv[++i]);
    } else if (arg == "--timeout-ms" && has_value) {
      opts.timeout_ms = std::stod(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
#ifdef SIGPIPE
  // Belt and braces: the transport writes with MSG_NOSIGNAL, but
  // nothing else in the process should die to a dropped peer either.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  try {
    lcl::service::Server server(opts);
    if (stdio) return run_stdio(server);
    lcl::service::Transport transport(server, topts);
    transport.listen_now();
    std::cerr << "lcld: listening on " << transport.endpoint() << "\n";
    const int rc = transport.run(&g_stop);
    server.drain();
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "lcld: " << e.what() << "\n";
    return 1;
  }
}
