// lcld — the classification-as-a-service daemon.
//
// Serves the line-delimited JSON protocol of src/service/ in one of two
// transports:
//
//   * --stdio (default): one request per stdin line, one response per
//     stdout line, in order. This is the pipe mode CI and the tests
//     drive (`lcld --stdio < requests.jsonl > responses.jsonl`); EOF
//     drains and exits 0.
//   * --socket PATH: a Unix stream socket. Each connection gets a
//     reader thread; its requests go through the server's bounded
//     admission queue (`Server::submit`), so a burst beyond
//     --max-queue is answered `overloaded` instead of ballooning
//     memory. Responses are written back in request order per
//     connection.
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting input,
// finish everything queued and in flight, exit 0.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [--stdio | --socket PATH] [options]\n"
      << "  --stdio           serve stdin/stdout, one JSON line each way"
         " (default)\n"
      << "  --socket PATH     serve a Unix stream socket at PATH\n"
      << "  --cache-mb N      problem-cache byte budget in MiB"
         " (default 64)\n"
      << "  --threads N       worker threads (default 1)\n"
      << "  --max-queue N     admission queue depth (default 256)\n"
      << "  --timeout-ms X    per-request queue-age limit;"
         " < 0 disables (default)\n";
  return 2;
}

int run_stdio(lcl::service::Server& server) {
  std::string line;
  while (g_stop == 0 && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << server.handle_line(line) << '\n' << std::flush;
  }
  server.drain();
  return 0;
}

bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t got =
        ::write(fd, data.data() + sent, data.size() - sent);
    if (got <= 0) return false;
    sent += static_cast<std::size_t>(got);
  }
  return true;
}

void serve_connection(int fd, lcl::service::Server& server) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      // Through the bounded queue: backpressure applies per daemon,
      // not per connection. .get() keeps per-connection responses in
      // request order.
      const std::string response =
          server.submit(std::move(line)).get() + "\n";
      if (!write_all(fd, response)) {
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

int run_socket(lcl::service::Server& server, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "lcld: socket path too long: " << path << "\n";
    return 1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "lcld: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    std::cerr << "lcld: bind/listen " << path << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }
  std::cerr << "lcld: listening on " << path << "\n";

  std::vector<std::thread> connections;
  while (g_stop == 0) {
    pollfd waiter{fd, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 200);  // wake to check g_stop
    if (ready <= 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    connections.emplace_back(
        [conn, &server] { serve_connection(conn, server); });
  }
  ::close(fd);
  ::unlink(path.c_str());
  for (auto& t : connections) t.join();
  server.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool stdio = true;
  std::string socket_path;
  lcl::service::ServerOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--socket" && has_value) {
      stdio = false;
      socket_path = argv[++i];
    } else if (arg == "--cache-mb" && has_value) {
      opts.cache_bytes =
          static_cast<std::size_t>(std::stoll(argv[++i])) << 20;
    } else if (arg == "--threads" && has_value) {
      opts.threads = std::stoi(argv[++i]);
    } else if (arg == "--max-queue" && has_value) {
      opts.max_queue = std::stoi(argv[++i]);
    } else if (arg == "--timeout-ms" && has_value) {
      opts.timeout_ms = std::stod(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);  // a dropped connection is not fatal
#endif

  try {
    lcl::service::Server server(opts);
    return stdio ? run_stdio(server) : run_socket(server, socket_path);
  } catch (const std::exception& e) {
    std::cerr << "lcld: " << e.what() << "\n";
    return 1;
  }
}
