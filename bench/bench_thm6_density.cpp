// E6 — Theorem 6 (with Lemma 62): in the log* regime, for any
// 0 < r1 < r2 < 1 and eps > 0 there are parameters with
// alpha1(x) in [r1, r2] and alpha1(x') - alpha1(x) < eps — upper and
// lower bounds squeeze arbitrarily close. The scenario prints the chosen
// parameters for a grid of intervals and shows the gap shrinking as the
// Lemma-62 scaling constant c grows.
#include <algorithm>
#include <cstdio>

#include "core/exponents.hpp"
#include "scenario.hpp"

namespace lcl::bench {

void run_thm6_density(ScenarioContext& ctx) {
  std::printf("== E6: Theorem 6 — density of the log* regime ==\n\n");

  std::printf("Chosen parameters per target interval (eps = 0.05):\n");
  std::printf("  %-16s %8s %8s %4s %12s %12s %10s\n", "target [r1,r2]",
              "Delta", "d", "k", "alpha1(x)", "alpha1(x')", "gap");
  struct Interval {
    double r1, r2;
  };
  double worst_gap = 0.0;
  for (const Interval iv :
       {Interval{0.35, 0.45}, Interval{0.50, 0.60}, Interval{0.60, 0.70},
        Interval{0.70, 0.80}, Interval{0.80, 0.90}}) {
    const auto c = core::choose_logstar_exponent(iv.r1, iv.r2, 0.05);
    const double lo = core::alpha1_logstar(c.params.x, c.k);
    const double hi = core::alpha1_logstar(c.params.x_prime, c.k);
    std::printf("  [%.2f, %.2f]     %8d %8d %4d %12.4f %12.4f %10.4f\n",
                iv.r1, iv.r2, c.params.delta, c.params.d, c.k, lo, hi,
                hi - lo);
    worst_gap = std::max(worst_gap, hi - lo);
  }
  ctx.metric("worst_interval_gap", worst_gap);

  std::printf("\nLemma 62 — the gap |alpha1(x') - alpha1(x)| under "
              "scaling (p/q = 1/2, k = 2):\n");
  std::printf("  %4s %10s %10s %12s %12s %12s\n", "c", "Delta", "d",
              "x'", "x'-x", "exp gap");
  double final_gap = 0.0;
  for (int c = 1; c <= 8; ++c) {
    const auto g = core::params_for_rational(c, 2 * c);
    const double lo = core::alpha1_logstar(g.x, 2);
    const double hi = core::alpha1_logstar(g.x_prime, 2);
    std::printf("  %4d %10d %10d %12.5f %12.5f %12.5f\n", c, g.delta, g.d,
                g.x_prime, g.x_prime - g.x, hi - lo);
    final_gap = hi - lo;
  }
  ctx.metric("gap_at_c8", final_gap);
  std::printf("\nThe exponent gap decays like 1/Delta — Theorem 6's "
              "squeeze.\n");
}

}  // namespace lcl::bench
