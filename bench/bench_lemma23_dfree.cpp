// E11 — Lemmas 23, 40 and 52: the weight-gadget efficiency factors.
// On a balanced Delta-regular weight tree with w nodes,
//  * at least w^x nodes must Copy (Lemma 23, x = log(D-d-1)/log(D-1));
//  * Algorithm A produces at most 6 w^x copies (Lemma 40);
//  * the fast-decomposition pruning keeps at most 2 w^{x'} copies
//    (Lemma 52, x' = log(D-d+1)/log(D-1)).
// The fitted exponents of measured copy counts vs w are compared to x
// and x'.
#include <cmath>
#include <cstdio>

#include "algo/dfree_logn.hpp"
#include "algo/fast_decomp.hpp"
#include "core/exponents.hpp"
#include "core/fitting.hpp"
#include "graph/builders.hpp"
#include "problems/labels.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;
using graph::NodeId;

struct Inst {
  graph::Tree tree;
  std::vector<char> part, is_a;
};

Inst make(NodeId w, int delta) {
  Inst i;
  i.tree = graph::make_balanced_weight_tree(w, delta);
  i.part.assign(static_cast<std::size_t>(w), 1);
  i.is_a.assign(static_cast<std::size_t>(w), 0);
  i.is_a[0] = 1;
  i.tree.set_input(0, static_cast<int>(problems::DFreeInput::kA));
  for (NodeId v = 1; v < w; ++v) {
    i.tree.set_input(v, static_cast<int>(problems::DFreeInput::kW));
  }
  return i;
}

std::int64_t algo_a_copies(const Inst& i, int d) {
  const auto res = algo::run_dfree_algorithm_a(i.tree, i.part, i.is_a, d,
                                               i.tree.size());
  std::int64_t c = 0;
  for (int o : res.output) {
    c += (o == static_cast<int>(problems::WeightOut::kCopy));
  }
  return c;
}

std::int64_t fda_kept_copies(const Inst& i, int d) {
  const auto plan =
      algo::run_fast_decomposition(i.tree, i.part, i.is_a, d);
  std::vector<char> declined(static_cast<std::size_t>(i.tree.size()), 0);
  for (NodeId v = 0; v < i.tree.size(); ++v) {
    if (plan.role[static_cast<std::size_t>(v)] ==
        algo::FdaRole::kDecline) {
      declined[static_cast<std::size_t>(v)] = 1;
    }
  }
  std::int64_t kept = 0;
  for (std::size_t c = 0; c < plan.components.size(); ++c) {
    const auto keep = algo::prune_component(
        i.tree, plan, static_cast<int>(c), d, declined);
    for (char k : keep) kept += (k != 0);
  }
  return kept;
}

}  // namespace

namespace lcl::bench {

void run_lemma23_dfree(ScenarioContext& ctx) {
  std::printf("== E11: Lemmas 23/40/52 — weight-gadget efficiency ==\n\n");
  struct Config {
    int delta, d;
  };
  for (const Config c : {Config{5, 2}, Config{7, 3}, Config{9, 4},
                         Config{9, 6}}) {
    const double x = core::efficiency_x(c.delta, c.d);
    const double xp = core::efficiency_x_prime(c.delta, c.d);
    std::printf("Delta=%d d=%d: x=%.3f x'=%.3f\n", c.delta, c.d, x, xp);
    std::printf("  %10s %14s %14s %14s\n", "w", "AlgoA copies",
                "6*w^x bound", "FDA kept");
    std::vector<core::Sample> sa, sf;
    for (const std::int64_t base : {1000, 4000, 16000, 64000}) {
      const auto w = static_cast<NodeId>(ctx.scaled(base));
      const Inst inst = make(w, c.delta);
      const std::int64_t ca = algo_a_copies(inst, c.d);
      const bool fda_ok = c.d >= 3;
      const std::int64_t cf = fda_ok ? fda_kept_copies(inst, c.d) : -1;
      std::printf("  %10d %14lld %14.0f %14lld\n", w,
                  static_cast<long long>(ca),
                  6.0 * std::pow(static_cast<double>(w), x),
                  static_cast<long long>(cf));
      sa.push_back({static_cast<double>(w), static_cast<double>(ca)});
      if (fda_ok) {
        sf.push_back({static_cast<double>(w), static_cast<double>(cf)});
      }
    }
    const std::string cfg = "D" + std::to_string(c.delta) + "_d" +
                            std::to_string(c.d);
    const auto fa = core::fit_power_law(sa);
    if (fa.ok) {
      std::printf("  Algorithm A copy exponent: %.3f (paper: x = %.3f)\n",
                  fa.exponent, x);
      ctx.metric("algo_a_exponent_" + cfg, fa.exponent);
    } else {
      std::printf("  Algorithm A copy exponent: (degenerate sweep, no "
                  "fit)\n");
    }
    const auto ff = core::fit_power_law(sf);
    if (ff.ok) {
      std::printf("  FDA kept-copy exponent:    %.3f (paper: <= x' = "
                  "%.3f)\n",
                  ff.exponent, xp);
      ctx.metric("fda_exponent_" + cfg, ff.exponent);
    } else {
      std::printf("  FDA kept-copy exponent:    (skipped, needs d >= 3 "
                  "and a non-degenerate sweep)\n");
    }
    std::printf("\n");
  }
}

}  // namespace lcl::bench
