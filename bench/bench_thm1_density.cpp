// E5 — Theorem 1 (with Lemma 58): for every 0 < r1 < r2 <= 1/2 there are
// parameters (Delta, d, k) with alpha1 in [r1, r2] — the polynomial
// regime is dense. This bench runs the constructive search over a grid
// of target intervals, prints the realized parameters, and spot-checks
// two of them empirically with A_poly.
#include <cstdio>

#include "algo/apoly.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"

namespace {

using namespace lcl;

/// Node-average with the Connect/Decline weight nodes' contribution
/// removed — exactly the accounting of Theorem 2's proof ("terminate in
/// O(log n) rounds and can therefore be ignored"); at finite n that
/// logarithmic floor otherwise swamps small exponents.
double adjusted_average(const graph::Tree& tree,
                        const local::RunStats& stats) {
  std::int64_t total = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const bool weight =
        tree.input(v) == static_cast<int>(graph::WeightInput::kWeight);
    const bool copy =
        stats.output[static_cast<std::size_t>(v)].primary ==
        static_cast<int>(problems::WeightOut::kCopy);
    if (weight && !copy) continue;
    total += stats.termination_round[static_cast<std::size_t>(v)];
  }
  return static_cast<double>(total) / static_cast<double>(tree.size());
}

void spot_check(const core::DensityChoice& choice) {
  const double x = choice.params.x;
  const auto alphas = core::alpha_profile_poly(x, choice.k);
  std::vector<core::MeasuredRun> runs;
  for (std::int64_t n : {20000, 80000, 320000}) {
    const auto ell =
        core::lower_bound_lengths(alphas, static_cast<double>(n), n);
    auto inst = graph::make_weighted_construction(ell, choice.params.delta);
    graph::assign_ids(inst.tree, graph::IdScheme::kShuffled,
                      static_cast<std::uint64_t>(n));
    algo::ApolyOptions o;
    o.k = choice.k;
    o.d = choice.params.d;
    for (int i = 0; i + 1 < choice.k; ++i) {
      o.gammas.push_back(std::max<std::int64_t>(
          2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
    }
    const auto stats = algo::run_apoly(inst.tree, o);
    const auto check = problems::check_weighted(
        inst.tree, choice.k, choice.params.d,
        problems::Variant::kTwoHalf, stats.output);
    core::MeasuredRun r;
    r.scale = static_cast<double>(inst.tree.size());
    r.node_averaged = adjusted_average(inst.tree, stats);
    r.worst_case = stats.worst_case;
    r.n = inst.tree.size();
    r.valid = check.ok;
    r.check_reason = check.reason;
    runs.push_back(r);
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "spot check Delta=%d d=%d k=%d: target exponent %.4f",
                choice.params.delta, choice.params.d, choice.k,
                choice.exponent);
  core::print_experiment(title, runs, "n", choice.exponent,
                         choice.exponent);
}

}  // namespace

int main() {
  std::printf("== E5: Theorem 1 — density of the polynomial regime ==\n\n");
  std::printf("  %-16s %8s %6s %4s %10s %10s\n", "target [r1,r2]", "Delta",
              "d", "k", "x=p/q", "alpha1");
  struct Interval {
    double r1, r2;
  };
  std::vector<core::DensityChoice> chosen;
  for (const Interval iv :
       {Interval{0.10, 0.12}, Interval{0.15, 0.18}, Interval{0.20, 0.22},
        Interval{0.25, 0.28}, Interval{0.30, 0.33}, Interval{0.35, 0.38},
        Interval{0.40, 0.43}, Interval{0.45, 0.48},
        Interval{0.48, 0.50}}) {
    const auto c = core::choose_poly_exponent(iv.r1, iv.r2);
    std::printf("  [%.3f, %.3f]   %8d %6d %4d %10.4f %10.4f\n", iv.r1,
                iv.r2, c.params.delta, c.params.d, c.k, c.params.x,
                c.exponent);
    chosen.push_back(c);
  }
  std::printf("\nEvery target interval admitted Lemma-58 parameters "
              "(Delta = 2^q + 1, d = 2^q - 2^p).\n\n");

  // Spot-check two rows with laptop-scale Delta (the huge-Delta rows
  // are analytically exact but their weight trees have depth ~2 at any
  // feasible n, so scaling measurements are meaningless there).
  spot_check(chosen.front());
  spot_check(chosen[5]);
  return 0;
}
