// E5 — Theorem 1 (with Lemma 58): for every 0 < r1 < r2 <= 1/2 there are
// parameters (Delta, d, k) with alpha1 in [r1, r2] — the polynomial
// regime is dense. This scenario runs the constructive search over a grid
// of target intervals, prints the realized parameters, and spot-checks
// two of them empirically with A_poly.
#include <cstdio>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun spot_run(const core::DensityChoice& choice,
                           std::int64_t n, std::uint64_t seed) {
  const double x = choice.params.x;
  const auto alphas = core::alpha_profile_poly(x, choice.k);
  const auto ell =
      core::lower_bound_lengths(alphas, static_cast<double>(n), n);
  auto inst = graph::make_weighted_construction(ell, choice.params.delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);
  algo::SolverConfig cfg;
  cfg.set("k", choice.k);
  cfg.set("d", choice.params.d);
  std::vector<std::int64_t> gammas;
  for (int i = 0; i + 1 < choice.k; ++i) {
    gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  cfg.set("gammas", std::move(gammas));
  const auto run =
      algo::run_registered(algo::solver("apoly"), inst.tree, cfg);
  return core::measure_run_weight_adjusted(
      static_cast<double>(inst.tree.size()), inst.tree, run.stats,
      run.verdict);
}

void spot_check(lcl::bench::ScenarioContext& ctx,
                const core::DensityChoice& choice) {
  std::vector<core::BatchJob> jobs;
  for (const std::int64_t base : {20000, 80000, 320000}) {
    const std::int64_t n = ctx.scaled(base);
    core::BatchJob job;
    job.label = "density-n" + std::to_string(n);
    job.scale = static_cast<double>(n);
    job.seed = static_cast<std::uint64_t>(n);
    job.run = [choice, n](std::uint64_t seed) {
      return spot_run(choice, n, seed);
    };
    jobs.push_back(std::move(job));
  }
  auto runs = ctx.run_sweep(std::move(jobs));
  char title[160];
  std::snprintf(title, sizeof(title),
                "spot check Delta=%d d=%d k=%d: target exponent %.4f",
                choice.params.delta, choice.params.d, choice.k,
                choice.exponent);
  ctx.report(title, "n", choice.exponent, choice.exponent,
             std::move(runs));
}

}  // namespace

namespace lcl::bench {

void run_thm1_density(ScenarioContext& ctx) {
  std::printf("== E5: Theorem 1 — density of the polynomial regime ==\n\n");
  std::printf("  %-16s %8s %6s %4s %10s %10s\n", "target [r1,r2]", "Delta",
              "d", "k", "x=p/q", "alpha1");
  struct Interval {
    double r1, r2;
  };
  std::vector<core::DensityChoice> chosen;
  for (const Interval iv :
       {Interval{0.10, 0.12}, Interval{0.15, 0.18}, Interval{0.20, 0.22},
        Interval{0.25, 0.28}, Interval{0.30, 0.33}, Interval{0.35, 0.38},
        Interval{0.40, 0.43}, Interval{0.45, 0.48},
        Interval{0.48, 0.50}}) {
    const auto c = core::choose_poly_exponent(iv.r1, iv.r2);
    std::printf("  [%.3f, %.3f]   %8d %6d %4d %10.4f %10.4f\n", iv.r1,
                iv.r2, c.params.delta, c.params.d, c.k, c.params.x,
                c.exponent);
    chosen.push_back(c);
  }
  ctx.metric("intervals_realized", static_cast<double>(chosen.size()));
  std::printf("\nEvery target interval admitted Lemma-58 parameters "
              "(Delta = 2^q + 1, d = 2^q - 2^p).\n\n");

  // Spot-check two rows with laptop-scale Delta (the huge-Delta rows
  // are analytically exact but their weight trees have depth ~2 at any
  // feasible n, so scaling measurements are meaningless there).
  spot_check(ctx, chosen.front());
  spot_check(ctx, chosen[5]);
}

}  // namespace lcl::bench
