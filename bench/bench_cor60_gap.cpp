// E8 — Corollary 60: any LCL with worst-case complexity Omega(n) has
// node-averaged complexity Omega(n); combined with Lemma 69's
// Theta(sqrt n) class this exhibits both walls of the
// omega(sqrt n) .. o(n) gap. 2-coloring of paths is the canonical
// Theta(n) witness (exponent ~1); weight-augmented 2.5-coloring with
// k = 2 sits at the sqrt(n) wall (exponent ~1/2); the paper proves
// nothing exists between.
#include <cstdio>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_two_coloring(graph::NodeId n, std::uint64_t seed) {
  graph::Tree t = graph::make_path(n);
  graph::assign_ids(t, graph::IdScheme::kShuffled, seed);
  algo::SolverConfig cfg;
  cfg.set("k", 1);
  const auto run =
      algo::run_registered(algo::solver("generic_hier_25"), t, cfg);
  // At k = 1 on a path the Definition-8 certificate is exactly a proper
  // 2-coloring; keep the dedicated checker as a second, independent
  // verdict on top of the spec's.
  const auto check =
      problems::check_two_coloring(t, run.stats.primaries());
  return core::measure_run(
      static_cast<double>(n), run.stats,
      run.verdict.ok ? check : run.verdict);
}

}  // namespace

namespace lcl::bench {

void run_cor60_gap(ScenarioContext& ctx) {
  std::printf("== E8: Corollary 60 — the omega(sqrt n)..o(n) gap ==\n\n");
  std::vector<core::BatchJob> jobs;
  for (const std::int64_t base : {2000, 5657, 16000, 45255}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    core::BatchJob job;
    job.label = "2col-n" + std::to_string(n);
    job.scale = static_cast<double>(n);
    job.seed = static_cast<std::uint64_t>(n);
    job.run = [n](std::uint64_t seed) {
      return run_two_coloring(n, seed);
    };
    jobs.push_back(std::move(job));
  }
  auto runs = ctx.run_sweep(std::move(jobs));
  ctx.report(
      "2-coloring of paths: worst case Theta(n) forces node-avg Theta(n)",
      "n", 1.0, 1.0, std::move(runs));
  std::printf(
      "Lemma 59's amplification in action: a node running t rounds forces\n"
      "t/2 - 1 nodes within distance t/2 to run t/2 rounds, so linear\n"
      "worst case implies linear node-average. Together with the\n"
      "Theta(n^{1/2}) class of E7 this brackets the proven gap: no LCL has\n"
      "node-averaged complexity strictly between sqrt(n) and n.\n");
}

}  // namespace lcl::bench
