// E1 — Figures 1 and 2: the node-averaged complexity landscape of LCLs
// on bounded-degree trees, before and after this paper, with measured
// witnesses from the simulator attached to each realizable row.
#include <cmath>
#include <cstdio>

#include "algo/registry.hpp"
#include "core/exponents.hpp"
#include "core/landscape.hpp"
#include "graph/builders.hpp"
#include "problems/labels.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

void print_table(bool after) {
  std::printf("%s\n", after
                          ? "Figure 2 — the completed landscape (this paper)"
                          : "Figure 1 — the landscape before this paper");
  std::printf("  %-38s %-7s %-12s %s\n", "range", "kind", "provenance",
              "source");
  for (const auto& row : core::landscape(after)) {
    std::printf("  %-38s %-7s %-12s %s\n", row.range.c_str(),
                core::to_string(row.kind).c_str(),
                core::to_string(row.provenance).c_str(),
                row.source.c_str());
  }
  std::printf("\n");
}

double measure_path(problems::Variant variant, graph::NodeId n) {
  graph::Tree t = graph::make_path(n);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 1);
  algo::SolverConfig cfg;
  cfg.set("k", 1);
  const auto run = algo::run_registered(
      algo::solver(variant == problems::Variant::kTwoHalf
                       ? "generic_hier_25"
                       : "generic_hier_35"),
      t, cfg);
  if (!run.verdict.ok) {
    std::printf("  !! invalid: %s\n", run.verdict.reason.c_str());
  }
  return run.stats.node_averaged;
}

}  // namespace

namespace lcl::bench {

void run_fig2_landscape(ScenarioContext& ctx) {
  std::printf("== E1: node-averaged complexity landscape ==\n\n");
  print_table(/*after=*/false);
  print_table(/*after=*/true);
  ctx.metric("rows_before",
             static_cast<double>(core::landscape(false).size()));
  ctx.metric("rows_after",
             static_cast<double>(core::landscape(true).size()));

  const auto n_small = static_cast<graph::NodeId>(ctx.scaled(2000));
  const auto n_large = static_cast<graph::NodeId>(ctx.scaled(8000));
  std::printf("Measured witnesses (node-averaged rounds):\n");
  const double lin_small =
      measure_path(problems::Variant::kTwoHalf, n_small);
  const double lin_large =
      measure_path(problems::Variant::kTwoHalf, n_large);
  std::printf("  Theta(n) row       — 2-coloring of paths:   n=%d: %8.1f"
              "  n=%d: %8.1f  (ratio ~4 = linear)\n",
              n_small, lin_small, n_large, lin_large);
  ctx.metric("two_coloring_growth_ratio", lin_large / lin_small);
  const double star_small =
      measure_path(problems::Variant::kThreeHalf, n_small);
  const double star_large =
      measure_path(problems::Variant::kThreeHalf, n_large);
  std::printf("  Theta(log* n) row  — 3-coloring of paths:   n=%d: %8.1f"
              "  n=%d: %8.1f  (flat = log*)\n",
              n_small, star_small, n_large, star_large);
  ctx.metric("three_coloring_growth_ratio", star_large / star_small);

  // Theta(sqrt n) witness (Lemma 69, new in this paper).
  {
    std::vector<std::int64_t> ell = {64, 64};
    auto inst = graph::make_weighted_construction(ell, 5);
    graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 2);
    algo::SolverConfig cfg;
    cfg.set("k", 2);
    const auto run =
        algo::run_registered(algo::solver("weight_aug"), inst.tree, cfg);
    std::printf("  Theta(sqrt n) row  — weight-augmented 2.5: n=%lld: %8.1f"
                "  (sqrt(n)=%.1f)  valid=%s\n",
                static_cast<long long>(inst.tree.size()),
                run.stats.node_averaged,
                std::sqrt(static_cast<double>(inst.tree.size())),
                run.verdict.ok ? "yes" : run.verdict.reason.c_str());
    ctx.metric("sqrt_witness_node_avg", run.stats.node_averaged);
  }

  std::printf("\nDense-region exponents realizable by Pi^{2.5} "
              "(Theorem 1 samples):\n  ");
  for (auto [p, q] : {std::pair<int, int>{1, 2}, {1, 3}, {2, 3}, {3, 4}}) {
    const auto g = core::params_for_rational(p, q);
    std::printf("x=%d/%d -> n^%.4f  ", p, q, core::alpha1_poly(g.x, 2));
  }
  std::printf("\n");
}

}  // namespace lcl::bench
