// problem_sweep — the problem axis of the landscape, swept end to end.
//
// Every other scenario runs a hand-picked LCL; this one samples
// `--problems` random black-white tree LCLs (problems/lclgen.hpp,
// deduplicated up to label permutation), predicts each one's landscape
// row with the decision-procedure machinery (problems/classify.hpp: the
// exact rake closure + the src/bw testing procedure and constant-good
// test), then *measures* each solvable problem through the solver
// registry: the bw_generic solver runs it on delta-3 instances of the
// chain-heavy registry families at two sizes, every run is certified by
// the independent bw checker, the node-averaged exponent is fitted, and
// the pooled measurements are classified back into the same four classes
// (classify_empirical). The headline metrics are the agreement counts:
//
//   problems_total / problems_agree / problems_disagree /
//   problems_uncertified (+ per-disagreement problem seeds)
//
// Predicted-unsolvable problems are evaluated inline (the solver modes
// on small instances, no engine runs) since an infeasible instance has
// no certifiable output. Disagreements are expected occasionally — the
// prediction reasons over *all* bounded-degree trees while the sweep
// sees sampled instances (e.g. a predicted split whose realized chain
// boundaries happen to be constant-completable) — and every one is
// listed by problem seed, in the table and in the snapshot metrics.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/bw_generic.hpp"
#include "core/batch.hpp"
#include "graph/families.hpp"
#include "problems/classify.hpp"
#include "problems/lclgen.hpp"
#include "scenario.hpp"

namespace lcl::bench {

namespace {

/// The families the sweep solves on: chain-heavy shapes (so compress
/// splitting is visible in the average) plus random trees, all built at
/// the table formalism's delta = 3. Filtered by --families.
std::vector<std::string> sweep_families(
    const std::vector<std::string>& selected) {
  const std::vector<std::string> preferred = {"path", "caterpillar",
                                              "prufer", "galton_watson"};
  std::vector<std::string> out;
  for (const std::string& name : preferred) {
    for (const std::string& sel : selected) {
      if (sel == name) {
        out.push_back(name);
        break;
      }
    }
  }
  // An explicit --families selection that misses every sweep family
  // still sweeps the full set: the problem axis is the point here.
  return out.empty() ? preferred : out;
}

/// Degree bound to build `family` at: shape-determined families (path:
/// degree <= 2 by construction) take no parameter, the rest are capped
/// at the table formalism's delta = 3.
int family_delta(const std::string& family) {
  const graph::Family* f = graph::find_family(family);
  return (f != nullptr && f->default_delta == 0) ? 0 : 3;
}

}  // namespace

void run_problem_sweep(ScenarioContext& ctx) {
  const int want = ctx.opts().problems;
  const std::uint64_t base_seed = ctx.opts().problem_seed;
  const std::vector<problems::BwTable> tables =
      problems::sample_problems(base_seed, want);
  const std::vector<std::string> families =
      sweep_families(ctx.opts().families);

  const auto n_small = static_cast<graph::NodeId>(ctx.scaled(4000, 64));
  const auto n_large = static_cast<graph::NodeId>(ctx.scaled(64000, 256));
  constexpr int kDelta = 3;

  std::printf(
      "== problem sweep: %zu sampled LCLs (base seed %llu), %zu "
      "families at delta %d, n in {%d, %d} ==\n\n",
      tables.size(), static_cast<unsigned long long>(base_seed),
      families.size(), kDelta, n_small, n_large);
  std::printf("  %-16s %-26s %-13s %-13s %-6s %9s %8s\n", "seed",
              "problem", "predicted", "empirical", "agree", "na@large",
              "status");

  int agree = 0;
  int disagree = 0;
  int uncertified = 0;
  int unsolvable_predicted = 0;
  std::vector<std::uint64_t> disagree_seeds;

  for (const problems::BwTable& table : tables) {
    const problems::Classification cls = problems::classify_table(table);
    problems::EmpiricalSignal signal;
    signal.n_small = n_small;
    signal.n_large = n_large;
    std::string status = "ok";
    double na_large_shown = 0.0;

    if (cls.predicted == problems::ProblemClass::kUnsolvable) {
      // No certifiable output exists on an infeasible instance, so the
      // empirical side is the solver's behavior on concrete instances:
      // the closure's own *witness tree* (the constructively infeasible
      // configuration) plus the sweep families.
      ++unsolvable_predicted;
      bool any_global = false;
      bool any_split = false;
      const problems::BwTable canon =
          problems::canonical_table(problems::strip_unused_labels(table));
      const problems::TreeTesting tt = problems::tree_testing(canon);
      if (tt.has_witness) {
        const algo::BwGenericProgram probe(tt.witness, canon);
        if (probe.mode() == algo::BwMode::kInfeasible) {
          signal.any_infeasible = true;
        }
      }
      for (const std::string& family : families) {
        const graph::Tree tree = graph::make_family_instance(
            family, std::min<graph::NodeId>(n_small, 1024),
            core::stable_name_seed("problem_sweep@" + family) ^ table.seed,
            family_delta(family));
        const algo::BwGenericProgram probe(tree, table);
        switch (probe.mode()) {
          case algo::BwMode::kInfeasible: signal.any_infeasible = true; break;
          case algo::BwMode::kGlobal: any_global = true; break;
          case algo::BwMode::kFlexibleSplit: any_split = true; break;
          case algo::BwMode::kFlexible: break;
        }
      }
      if (!signal.any_infeasible) {
        // All sampled instances dodged the witness shape; report what
        // actually ran so the disagreement is informative.
        signal.na_large = any_global ? 1e9 : (any_split ? 100.0 : 0.0);
        signal.na_small = any_global ? 1e9 / 2 : signal.na_large;
      }
      status = "inline";
    } else {
      algo::SolverConfig config;
      config.set("problem_seed", static_cast<std::int64_t>(table.seed));
      std::vector<core::BatchJob> jobs;
      for (const std::string& family : families) {
        for (const graph::NodeId n : {n_small, n_large}) {
          const std::uint64_t job_seed =
              core::stable_name_seed("problem_sweep@" + family) ^
              (table.seed + static_cast<std::uint64_t>(n));
          const std::int64_t max_rounds =
              8 * static_cast<std::int64_t>(n) + 4096;
          jobs.push_back(core::make_solver_job(
              "p" + std::to_string(table.seed) + "@" + family + "-n" +
                  std::to_string(n),
              static_cast<double>(n), job_seed, "bw_generic", config,
              family, n, family_delta(family), max_rounds));
        }
      }
      std::vector<core::MeasuredRun> runs = ctx.run_sweep(std::move(jobs));

      double sum_small = 0.0;
      double sum_large = 0.0;
      int cnt_small = 0;
      int cnt_large = 0;
      for (const core::MeasuredRun& r : runs) {
        if (r.ok()) {
          // `scale` carries the *requested* n (families may round the
          // actual node count to their shape grid).
          if (r.scale <= static_cast<double>(n_small) + 0.5) {
            sum_small += r.node_averaged;
            ++cnt_small;
          } else {
            sum_large += r.node_averaged;
            ++cnt_large;
          }
        } else if (r.status == core::RunStatus::kCheckFailed &&
                   r.check_reason.find("infeasible") != std::string::npos) {
          signal.any_infeasible = true;
        } else {
          ++uncertified;
          status = core::to_string(r.status);
        }
      }
      if (cnt_small > 0) signal.na_small = sum_small / cnt_small;
      if (cnt_large > 0) signal.na_large = sum_large / cnt_large;
      na_large_shown = signal.na_large;

      // One series per problem; the snapshot carries the fitted
      // node-averaged exponent and every certified sample.
      ctx.record("problem_sweep: p" + std::to_string(table.seed), "n",
                 0.0, 1.0, std::move(runs));
    }

    const problems::ProblemClass empirical =
        problems::classify_empirical(signal);
    const bool match = empirical == cls.predicted;
    agree += match ? 1 : 0;
    disagree += match ? 0 : 1;
    if (!match) disagree_seeds.push_back(table.seed);

    std::printf("  %-16llu %-26.26s %-13s %-13s %-6s %9.2f %8s\n",
                static_cast<unsigned long long>(table.seed),
                table.name.c_str(),
                problems::to_string(cls.predicted).c_str(),
                problems::to_string(empirical).c_str(),
                match ? "yes" : "NO", na_large_shown, status.c_str());
  }

  ctx.metric("problems_total", static_cast<double>(tables.size()));
  ctx.metric("problems_agree", static_cast<double>(agree));
  ctx.metric("problems_disagree", static_cast<double>(disagree));
  ctx.metric("problems_uncertified", static_cast<double>(uncertified));
  ctx.metric("problems_unsolvable_predicted",
             static_cast<double>(unsolvable_predicted));
  // Disagreements listed by problem seed (sub-seeds are 53-bit by
  // construction, so the doubles below are exact).
  for (std::size_t i = 0; i < disagree_seeds.size(); ++i) {
    ctx.metric("disagree_" + std::to_string(i) + "_seed",
               static_cast<double>(disagree_seeds[i]));
  }

  std::printf(
      "\n  %d/%zu problems agree (%d disagree, %d uncertified runs, "
      "%d predicted unsolvable)\n\n",
      agree, tables.size(), disagree, uncertified,
      unsolvable_predicted);
}

}  // namespace lcl::bench
