// E7 — Lemma 69 (Section 10): k-hierarchical weight-augmented
// 2.5-coloring has node-averaged complexity Theta(n^{1/k}) — the
// efficiency-1 weight gadget reaches the worst-case exponent, closing
// the Theta(sqrt n) endpoint that Pi^{2.5} can only approach.
#include <cmath>
#include <cstdio>

#include "algo/weight_aug.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_one(int k, std::int64_t target_n,
                          std::uint64_t seed) {
  const double l = std::pow(static_cast<double>(target_n),
                            1.0 / static_cast<double>(k));
  std::vector<std::int64_t> ell(
      static_cast<std::size_t>(k),
      std::max<std::int64_t>(2, std::llround(l)));
  auto inst = graph::make_weighted_construction(ell, 5);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::WeightAugOptions o;
  o.k = k;
  problems::OrientationMap orient;
  const auto stats = algo::run_weight_aug(inst.tree, o, &orient);
  const auto check = problems::check_weight_augmented(
      inst.tree, k, stats.output, orient);

  core::MeasuredRun r;
  r.scale = static_cast<double>(inst.tree.size());
  r.node_averaged = stats.node_averaged;
  r.worst_case = stats.worst_case;
  r.n = inst.tree.size();
  r.valid = check.ok;
  r.check_reason = check.reason;
  return r;
}

}  // namespace

int main() {
  std::printf("== E7: Lemma 69 — weight-augmented 2.5-coloring is "
              "Theta(n^{1/k}) ==\n\n");
  for (int k : {2, 3}) {
    std::vector<core::MeasuredRun> runs;
    for (std::int64_t n : {8000, 32000, 128000, 512000}) {
      runs.push_back(run_one(k, n, static_cast<std::uint64_t>(n + k)));
    }
    const double predicted = 1.0 / k;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "weight-augmented 2.5-coloring, k=%d: node-avg ~ "
                  "n^{1/k}",
                  k);
    core::print_experiment(title, runs, "n", predicted, predicted);
  }
  return 0;
}
