// E7 — Lemma 69 (Section 10): k-hierarchical weight-augmented
// 2.5-coloring has node-averaged complexity Theta(n^{1/k}) — the
// efficiency-1 weight gadget reaches the worst-case exponent, closing
// the Theta(sqrt n) endpoint that Pi^{2.5} can only approach.
#include <cmath>
#include <cstdio>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_one(int k, std::int64_t target_n,
                          std::uint64_t seed) {
  const double l = std::pow(static_cast<double>(target_n),
                            1.0 / static_cast<double>(k));
  std::vector<std::int64_t> ell(
      static_cast<std::size_t>(k),
      std::max<std::int64_t>(2, std::llround(l)));
  auto inst = graph::make_weighted_construction(ell, 5);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  // The orientation map the checker needs stays solver-side; the spec's
  // certify recovers it from the program, so the registry path needs no
  // out-parameter plumbing.
  algo::SolverConfig cfg;
  cfg.set("k", k);
  const auto run =
      algo::run_registered(algo::solver("weight_aug"), inst.tree, cfg);
  return core::measure_run(static_cast<double>(inst.tree.size()),
                           run.stats, run.verdict);
}

}  // namespace

namespace lcl::bench {

void run_lemma69_weightaug(ScenarioContext& ctx) {
  std::printf("== E7: Lemma 69 — weight-augmented 2.5-coloring is "
              "Theta(n^{1/k}) ==\n\n");
  for (int k : {2, 3}) {
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t base : {8000, 32000, 128000, 512000}) {
      const std::int64_t n = ctx.scaled(base);
      core::BatchJob job;
      job.label = "waug-n" + std::to_string(n);
      job.scale = static_cast<double>(n);
      job.seed = static_cast<std::uint64_t>(n + k);
      job.run = [k, n](std::uint64_t seed) { return run_one(k, n, seed); };
      jobs.push_back(std::move(job));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    const double predicted = 1.0 / k;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "weight-augmented 2.5-coloring, k=%d: node-avg ~ "
                  "n^{1/k}",
                  k);
    ctx.report(title, "n", predicted, predicted, std::move(runs));
  }
}

}  // namespace lcl::bench
