// service_sweep — load generator for the lcld service layer.
//
// Drives an in-process `service::Server` (the same object lcld wraps)
// through three phases and records the serving-layer numbers as
// first-class snapshot metrics (additive lclbench-v3 fields; the
// compare/history gates do not diff metrics, so the wall-clock entries
// are safe to track across heterogeneous runners):
//
//   1. *Cache-hit phase* (deterministic): a Zipf-skewed repeat-query
//      mix over `--problems`-capped lclgen seeds, replayed through the
//      synchronous `handle_line` path on a fresh server, so
//      `service_hit_rate` = hits / (hits + misses) is exact and
//      reproducible. The phase also pins the memoization contract the
//      hammer test asserts under threads: every repeat response must be
//      byte-identical to its cold response (`service_warm_identical`).
//   2. *Latency phase* (wall clock): concurrent client threads hammer
//      `submit` with the same Zipf mix against a prewarmed server;
//      warm-query p50/p99 latency and aggregate throughput are the
//      headline serving metrics (`service_warm_p50_ms`,
//      `service_warm_p99_ms`, `service_throughput_rps`).
//   3. *Solve phase* (deterministic): a handful of solve round trips —
//      table-driven bw_generic runs through the server's BatchRunner —
//      counting certified verdicts (`service_solves_ok`).
//   4. *TCP phase* (wall clock): real multi-client traffic through the
//      poll-based transport supervisor on a loopback TCP listener.
//      Every client replays the same warm mix twice — serial (one
//      request on the wire at a time, the pre-supervisor behavior) and
//      pipelined (windows of kTcpWindow requests in flight per
//      connection) — recording both throughputs, their ratio
//      (`service_tcp_speedup`, the pipelining win), per-connection
//      fairness (slowest/fastest client throughput over the serial
//      pass), and whether every TCP reply was byte-identical to the
//      in-process `handle_line` reply (`service_tcp_identical`, the
//      cross-transport determinism contract).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "problems/lclgen.hpp"
#include "scenario.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace lcl::bench {

namespace {

/// Distinct problems in the query mix. Fixed (not scaled by --n): the
/// mix's skew, not its universe, is the workload parameter.
constexpr int kDistinctProblems = 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Zipf(s = 1) sampler over ranks [0, n): precomputed CDF, inverted by
/// a uniform draw from the request index. Rank 0 carries ~23% of the
/// mass at n = 40, so the mix is dominated by a few hot problems —
/// the repeat-heavy traffic shape the cache exists for.
class ZipfMix {
 public:
  ZipfMix(int n, std::uint64_t seed) : seed_(seed) {
    cdf_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] int rank(std::uint64_t request_index) const {
    const std::uint64_t bits = splitmix64(seed_ ^ request_index);
    const double u =
        static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::uint64_t seed_;
  std::vector<double> cdf_;
};

std::string classify_line(std::uint64_t problem_seed) {
  return "{\"type\":\"classify\",\"problem_seed\":" +
         std::to_string(problem_seed) + "}";
}

/// Per-connection pipeline window of the TCP phase (client and server
/// side agree, so a full client window never overruns the supervisor's
/// in-flight bound into its backlog).
constexpr int kTcpWindow = 32;

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Blocking line read over `fd`, buffered in `buf` across calls.
bool read_response_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t newline = buf.find('\n');
    if (newline != std::string::npos) {
      line.assign(buf, 0, newline);
      buf.erase(0, newline + 1);
      return true;
    }
    char chunk[8192];
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buf.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

void run_service_sweep(ScenarioContext& ctx) {
  const ScenarioOptions& opts = ctx.opts();
  const std::vector<problems::BwTable> tables = problems::sample_problems(
      opts.problem_seed, kDistinctProblems);
  const ZipfMix mix(static_cast<int>(tables.size()),
                    splitmix64(opts.seed ^ 0x5e41ull));

  // --- Phase 1: deterministic cache-hit rate over the Zipf mix. ------
  const std::int64_t requests = ctx.scaled(2000, 200);
  service::ServerOptions sopts;
  sopts.cache_bytes = 32ull << 20;
  sopts.threads = 1;
  service::Server server(sopts);

  std::vector<std::string> cold(tables.size());
  std::int64_t identical = 0;
  std::int64_t repeats = 0;
  for (std::int64_t i = 0; i < requests; ++i) {
    const int rank = mix.rank(static_cast<std::uint64_t>(i));
    const std::string response = server.handle_line(
        classify_line(tables[static_cast<std::size_t>(rank)].seed));
    std::string& first = cold[static_cast<std::size_t>(rank)];
    if (first.empty()) {
      first = response;
    } else {
      ++repeats;
      if (response == first) ++identical;
    }
  }
  const service::CacheStats cs = server.cache().stats();
  const double hit_rate =
      cs.hits + cs.misses == 0
          ? 0.0
          : static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses);
  ctx.metric("service_requests", static_cast<double>(requests));
  ctx.metric("service_distinct_problems",
             static_cast<double>(tables.size()));
  ctx.metric("service_hit_rate", hit_rate);
  ctx.metric("service_cache_entries", static_cast<double>(cs.entries));
  ctx.metric("service_warm_identical",
             repeats > 0 && identical == repeats ? 1.0 : 0.0);

  // --- Phase 2: concurrent latency/throughput against a warm server. -
  service::ServerOptions lopts;
  lopts.cache_bytes = 32ull << 20;
  lopts.threads = std::max(1, opts.threads);
  lopts.max_queue = 1 << 16;
  service::Server latency_server(lopts);
  for (const problems::BwTable& t : tables) {
    (void)latency_server.handle_line(classify_line(t.seed));  // prewarm
  }
  const int clients = std::max(2, opts.threads);
  const std::int64_t per_client = ctx.scaled(400, 50);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double>& out = latencies[static_cast<std::size_t>(c)];
        out.reserve(static_cast<std::size_t>(per_client));
        for (std::int64_t i = 0; i < per_client; ++i) {
          const int rank = mix.rank(
              splitmix64(static_cast<std::uint64_t>(c) * 0x10001ull +
                         static_cast<std::uint64_t>(i)));
          const auto start = std::chrono::steady_clock::now();
          latency_server
              .submit(classify_line(
                  tables[static_cast<std::size_t>(rank)].seed))
              .get();
          out.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  std::vector<double> all;
  for (const auto& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double rps =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  ctx.metric("service_warm_p50_ms", p50);
  ctx.metric("service_warm_p99_ms", p99);
  ctx.metric("service_throughput_rps", rps);

  // --- Phase 3: solve round trips through the server's BatchRunner. --
  const std::int64_t solve_n = ctx.scaled(2000, 128);
  std::int64_t solves_ok = 0;
  const int solve_count = std::min<int>(3, static_cast<int>(tables.size()));
  for (int i = 0; i < solve_count; ++i) {
    const std::string line =
        "{\"type\":\"solve\",\"problem_seed\":" +
        std::to_string(tables[static_cast<std::size_t>(i)].seed) +
        ",\"solver\":\"bw_generic\",\"family\":\"path\",\"n\":" +
        std::to_string(solve_n) + "}";
    const std::string response = server.handle_line(line);
    if (response.find("\"certified\":true") != std::string::npos) {
      ++solves_ok;
    }
  }
  ctx.metric("service_solves_ok", static_cast<double>(solves_ok));
  ctx.metric("service_solve_requests", static_cast<double>(solve_count));

  // --- Phase 4: multi-client TCP, pipelined vs serial round trips. ---
  service::ServerOptions nopts;
  nopts.cache_bytes = 32ull << 20;
  nopts.threads = std::max(2, opts.threads);
  nopts.max_queue = 1 << 16;
  service::Server net_server(nopts);
  service::TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.tcp_port = 0;  // ephemeral: the bench never collides
  topts.max_conns = 64;
  topts.pipeline_depth = kTcpWindow;
  service::Transport transport(net_server, topts);
  transport.listen_now();
  transport.start();

  // Prewarm + reference replies: the request lines carry no id, so the
  // TCP replies must be byte-identical to the in-process ones.
  std::vector<std::string> expected(tables.size());
  for (std::size_t r = 0; r < tables.size(); ++r) {
    expected[r] = net_server.handle_line(classify_line(tables[r].seed));
  }

  const int tcp_clients = std::max(2, std::min(8, opts.threads));
  const std::int64_t per_tcp_client = ctx.scaled(3000, 120);
  std::atomic<std::int64_t> mismatches{0};
  std::atomic<std::int64_t> io_failures{0};

  const auto client_pass = [&](int client, std::int64_t window) {
    const int fd = connect_loopback(transport.port());
    if (fd < 0) {
      io_failures.fetch_add(per_tcp_client);
      return;
    }
    std::string inbuf;
    std::string line;
    std::string batch;
    for (std::int64_t i = 0; i < per_tcp_client; i += window) {
      const std::int64_t count =
          std::min<std::int64_t>(window, per_tcp_client - i);
      batch.clear();
      std::vector<int> ranks;
      ranks.reserve(static_cast<std::size_t>(count));
      for (std::int64_t j = 0; j < count; ++j) {
        const int rank = mix.rank(splitmix64(
            static_cast<std::uint64_t>(client) * 0x7f4a7c15ull +
            static_cast<std::uint64_t>(i + j)));
        ranks.push_back(rank);
        batch += classify_line(tables[static_cast<std::size_t>(rank)].seed);
        batch += '\n';
      }
      if (!service::write_fully(fd, batch)) {
        io_failures.fetch_add(count);
        break;
      }
      for (std::int64_t j = 0; j < count; ++j) {
        if (!read_response_line(fd, inbuf, line)) {
          io_failures.fetch_add(count - j);
          break;
        }
        if (line !=
            expected[static_cast<std::size_t>(
                ranks[static_cast<std::size_t>(j)])]) {
          mismatches.fetch_add(1);
        }
      }
    }
    ::close(fd);
  };

  const auto run_pass = [&](std::int64_t window,
                            std::vector<double>* client_wall_s) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tcp_clients));
    if (client_wall_s != nullptr) {
      client_wall_s->assign(static_cast<std::size_t>(tcp_clients), 0.0);
    }
    const auto pass_t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < tcp_clients; ++c) {
      threads.emplace_back([&, c] {
        const auto c_t0 = std::chrono::steady_clock::now();
        client_pass(c, window);
        if (client_wall_s != nullptr) {
          (*client_wall_s)[static_cast<std::size_t>(c)] =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - c_t0)
                  .count();
        }
      });
    }
    for (auto& t : threads) t.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         pass_t0)
        .count();
  };

  const double total_requests =
      static_cast<double>(tcp_clients) *
      static_cast<double>(per_tcp_client);
  std::vector<double> serial_walls;
  const double serial_s = run_pass(/*window=*/1, &serial_walls);
  const double pipelined_s = run_pass(kTcpWindow, nullptr);
  const double serial_rps = serial_s > 0.0 ? total_requests / serial_s : 0.0;
  const double pipelined_rps =
      pipelined_s > 0.0 ? total_requests / pipelined_s : 0.0;
  const double speedup = serial_rps > 0.0 ? pipelined_rps / serial_rps : 0.0;
  const double wall_min =
      *std::min_element(serial_walls.begin(), serial_walls.end());
  const double wall_max =
      *std::max_element(serial_walls.begin(), serial_walls.end());
  // Every client ran the same request count, so the slowest/fastest
  // throughput ratio is the inverse wall ratio; 1.0 = perfectly fair.
  const double fairness = wall_max > 0.0 ? wall_min / wall_max : 0.0;
  transport.stop();
  const service::TransportStats ts = transport.stats();

  ctx.metric("service_tcp_clients", static_cast<double>(tcp_clients));
  ctx.metric("service_tcp_requests", 2.0 * total_requests);
  ctx.metric("service_tcp_serial_rps", serial_rps);
  ctx.metric("service_tcp_pipelined_rps", pipelined_rps);
  ctx.metric("service_tcp_speedup", speedup);
  ctx.metric("service_tcp_fairness", fairness);
  ctx.metric("service_tcp_identical",
             mismatches.load() == 0 && io_failures.load() == 0 ? 1.0 : 0.0);
  ctx.metric("service_tcp_conns", static_cast<double>(ts.accepted));

  std::printf(
      "service_sweep: %lld requests over %zu problems  hit-rate %.4f  "
      "identical %lld/%lld\n",
      static_cast<long long>(requests), tables.size(), hit_rate,
      static_cast<long long>(identical), static_cast<long long>(repeats));
  std::printf(
      "service_sweep: warm latency p50 %.4f ms  p99 %.4f ms  "
      "throughput %.0f req/s (%d clients x %lld)\n",
      p50, p99, rps, clients, static_cast<long long>(per_client));
  std::printf("service_sweep: solve round trips certified %lld/%d\n",
              static_cast<long long>(solves_ok), solve_count);
  std::printf(
      "service_sweep: tcp %d clients x %lld  serial %.0f req/s  "
      "pipelined(%d) %.0f req/s  speedup %.2fx  fairness %.2f  "
      "identical %s\n",
      tcp_clients, static_cast<long long>(per_tcp_client), serial_rps,
      kTcpWindow, pipelined_rps, speedup, fairness,
      mismatches.load() == 0 && io_failures.load() == 0 ? "yes" : "NO");
}

}  // namespace lcl::bench
