// service_sweep — load generator for the lcld service layer.
//
// Drives an in-process `service::Server` (the same object lcld wraps)
// through three phases and records the serving-layer numbers as
// first-class snapshot metrics (additive lclbench-v3 fields; the
// compare/history gates do not diff metrics, so the wall-clock entries
// are safe to track across heterogeneous runners):
//
//   1. *Cache-hit phase* (deterministic): a Zipf-skewed repeat-query
//      mix over `--problems`-capped lclgen seeds, replayed through the
//      synchronous `handle_line` path on a fresh server, so
//      `service_hit_rate` = hits / (hits + misses) is exact and
//      reproducible. The phase also pins the memoization contract the
//      hammer test asserts under threads: every repeat response must be
//      byte-identical to its cold response (`service_warm_identical`).
//   2. *Latency phase* (wall clock): concurrent client threads hammer
//      `submit` with the same Zipf mix against a prewarmed server;
//      warm-query p50/p99 latency and aggregate throughput are the
//      headline serving metrics (`service_warm_p50_ms`,
//      `service_warm_p99_ms`, `service_throughput_rps`).
//   3. *Solve phase* (deterministic): a handful of solve round trips —
//      table-driven bw_generic runs through the server's BatchRunner —
//      counting certified verdicts (`service_solves_ok`).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "problems/lclgen.hpp"
#include "scenario.hpp"
#include "service/server.hpp"

namespace lcl::bench {

namespace {

/// Distinct problems in the query mix. Fixed (not scaled by --n): the
/// mix's skew, not its universe, is the workload parameter.
constexpr int kDistinctProblems = 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Zipf(s = 1) sampler over ranks [0, n): precomputed CDF, inverted by
/// a uniform draw from the request index. Rank 0 carries ~23% of the
/// mass at n = 40, so the mix is dominated by a few hot problems —
/// the repeat-heavy traffic shape the cache exists for.
class ZipfMix {
 public:
  ZipfMix(int n, std::uint64_t seed) : seed_(seed) {
    cdf_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] int rank(std::uint64_t request_index) const {
    const std::uint64_t bits = splitmix64(seed_ ^ request_index);
    const double u =
        static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::uint64_t seed_;
  std::vector<double> cdf_;
};

std::string classify_line(std::uint64_t problem_seed) {
  return "{\"type\":\"classify\",\"problem_seed\":" +
         std::to_string(problem_seed) + "}";
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

void run_service_sweep(ScenarioContext& ctx) {
  const ScenarioOptions& opts = ctx.opts();
  const std::vector<problems::BwTable> tables = problems::sample_problems(
      opts.problem_seed, kDistinctProblems);
  const ZipfMix mix(static_cast<int>(tables.size()),
                    splitmix64(opts.seed ^ 0x5e41ull));

  // --- Phase 1: deterministic cache-hit rate over the Zipf mix. ------
  const std::int64_t requests = ctx.scaled(2000, 200);
  service::ServerOptions sopts;
  sopts.cache_bytes = 32ull << 20;
  sopts.threads = 1;
  service::Server server(sopts);

  std::vector<std::string> cold(tables.size());
  std::int64_t identical = 0;
  std::int64_t repeats = 0;
  for (std::int64_t i = 0; i < requests; ++i) {
    const int rank = mix.rank(static_cast<std::uint64_t>(i));
    const std::string response = server.handle_line(
        classify_line(tables[static_cast<std::size_t>(rank)].seed));
    std::string& first = cold[static_cast<std::size_t>(rank)];
    if (first.empty()) {
      first = response;
    } else {
      ++repeats;
      if (response == first) ++identical;
    }
  }
  const service::CacheStats cs = server.cache().stats();
  const double hit_rate =
      cs.hits + cs.misses == 0
          ? 0.0
          : static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses);
  ctx.metric("service_requests", static_cast<double>(requests));
  ctx.metric("service_distinct_problems",
             static_cast<double>(tables.size()));
  ctx.metric("service_hit_rate", hit_rate);
  ctx.metric("service_cache_entries", static_cast<double>(cs.entries));
  ctx.metric("service_warm_identical",
             repeats > 0 && identical == repeats ? 1.0 : 0.0);

  // --- Phase 2: concurrent latency/throughput against a warm server. -
  service::ServerOptions lopts;
  lopts.cache_bytes = 32ull << 20;
  lopts.threads = std::max(1, opts.threads);
  lopts.max_queue = 1 << 16;
  service::Server latency_server(lopts);
  for (const problems::BwTable& t : tables) {
    (void)latency_server.handle_line(classify_line(t.seed));  // prewarm
  }
  const int clients = std::max(2, opts.threads);
  const std::int64_t per_client = ctx.scaled(400, 50);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double>& out = latencies[static_cast<std::size_t>(c)];
        out.reserve(static_cast<std::size_t>(per_client));
        for (std::int64_t i = 0; i < per_client; ++i) {
          const int rank = mix.rank(
              splitmix64(static_cast<std::uint64_t>(c) * 0x10001ull +
                         static_cast<std::uint64_t>(i)));
          const auto start = std::chrono::steady_clock::now();
          latency_server
              .submit(classify_line(
                  tables[static_cast<std::size_t>(rank)].seed))
              .get();
          out.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  std::vector<double> all;
  for (const auto& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double rps =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  ctx.metric("service_warm_p50_ms", p50);
  ctx.metric("service_warm_p99_ms", p99);
  ctx.metric("service_throughput_rps", rps);

  // --- Phase 3: solve round trips through the server's BatchRunner. --
  const std::int64_t solve_n = ctx.scaled(2000, 128);
  std::int64_t solves_ok = 0;
  const int solve_count = std::min<int>(3, static_cast<int>(tables.size()));
  for (int i = 0; i < solve_count; ++i) {
    const std::string line =
        "{\"type\":\"solve\",\"problem_seed\":" +
        std::to_string(tables[static_cast<std::size_t>(i)].seed) +
        ",\"solver\":\"bw_generic\",\"family\":\"path\",\"n\":" +
        std::to_string(solve_n) + "}";
    const std::string response = server.handle_line(line);
    if (response.find("\"certified\":true") != std::string::npos) {
      ++solves_ok;
    }
  }
  ctx.metric("service_solves_ok", static_cast<double>(solves_ok));
  ctx.metric("service_solve_requests", static_cast<double>(solve_count));

  std::printf(
      "service_sweep: %lld requests over %zu problems  hit-rate %.4f  "
      "identical %lld/%lld\n",
      static_cast<long long>(requests), tables.size(), hit_rate,
      static_cast<long long>(identical), static_cast<long long>(repeats));
  std::printf(
      "service_sweep: warm latency p50 %.4f ms  p99 %.4f ms  "
      "throughput %.0f req/s (%d clients x %lld)\n",
      p50, p99, rps, clients, static_cast<long long>(per_client));
  std::printf("service_sweep: solve round trips certified %lld/%d\n",
              static_cast<long long>(solves_ok), solve_count);
}

}  // namespace lcl::bench
