// E10 — Lemma 72 (Definitions 71/43, the Figure-5 substrate): the
// rake-and-compress decomposition yields O(log n) layers for gamma = 1
// and at most k layers for gamma ~ n^{1/k}, in time linear in the graph.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "decomp/rake_compress.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace lcl::bench {

void run_lemma72_decomposition(ScenarioContext& ctx) {
  std::printf("== E10: Lemma 72 — rake & compress decompositions ==\n\n");

  std::printf("gamma = 1 (proper, ell = 4): layers vs log2(n)\n");
  std::printf("  %10s %10s %12s %10s\n", "n", "layers", "log2(n)",
              "valid");
  for (const std::int64_t base : {1000, 10000, 100000, 1000000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    const graph::Tree t = graph::make_random_tree(n, 4, 42);
    const auto d = decomp::rake_compress(t, 1, 4, true);
    const std::string err = decomp::validate_decomposition(t, d);
    std::printf("  %10d %10d %12.1f %10s\n", n, d.num_layers,
                std::log2(static_cast<double>(n)),
                err.empty() ? "yes" : err.c_str());
  }

  std::printf("\ngamma = n^{1/k} * (ell/2)^{1-1/k}: layers vs k\n");
  std::printf("  %10s %4s %10s %10s %10s\n", "n", "k", "gamma", "layers",
              "valid");
  for (const std::int64_t base : {10000, 100000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    const graph::Tree t = graph::make_random_tree(n, 4, 7);
    for (int k : {2, 3, 4}) {
      const int gamma = static_cast<int>(std::ceil(
          std::pow(static_cast<double>(n), 1.0 / k) *
          std::pow(2.0, 1.0 - 1.0 / k)));
      const auto d = decomp::rake_compress(t, gamma, 4, true);
      const std::string err = decomp::validate_decomposition(t, d);
      std::printf("  %10d %4d %10d %10d %10s\n", n, k, gamma,
                  d.num_layers, err.empty() ? "yes" : err.c_str());
    }
  }

  std::printf("\nthroughput (proper, gamma = 1):\n");
  double mnodes_per_s = 0.0;
  for (const std::int64_t base : {100000, 400000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    const graph::Tree t = graph::make_random_tree(n, 4, 11);
    const auto start = std::chrono::steady_clock::now();
    const auto d = decomp::rake_compress(t, 1, 4, true);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    mnodes_per_s = static_cast<double>(n) / ms / 1000.0;
    std::printf("  n=%8d: %8.1f ms (%d layers, %.1f Mnodes/s)\n", n, ms,
                d.num_layers, mnodes_per_s);
  }
  ctx.metric("rake_compress_mnodes_per_s", mnodes_per_s);
}

}  // namespace lcl::bench
