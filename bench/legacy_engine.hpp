// Frozen pre-arena reference engine, kept ONLY as the baseline for the
// `engine_micro` scenario so the arena engine's speedup stays measurable
// (and regressions visible) across PRs. This mirrors the original
// simulator's storage exactly: per-node `std::vector<Register>` double
// buffers, a freshly allocated alive list every round, and a per-alive
// vector copy at the synchronous flip. Do not use outside benchmarks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::bench::legacy {

using Register = std::vector<std::int64_t>;

class Engine;

class NodeCtx {
 public:
  NodeCtx(Engine& engine, graph::NodeId v) : engine_(engine), v_(v) {}

  [[nodiscard]] graph::NodeId node() const { return v_; }
  [[nodiscard]] std::int64_t round() const;
  [[nodiscard]] int degree() const;
  [[nodiscard]] const Register& peek(int port) const;
  [[nodiscard]] const Register& peek_self() const;
  void publish(Register reg);
  void terminate(int primary);

 private:
  Engine& engine_;
  graph::NodeId v_;
};

class Program {
 public:
  virtual ~Program() = default;
  virtual void on_init(NodeCtx& ctx) = 0;
  virtual void on_round(NodeCtx& ctx) = 0;
};

struct RunStats {
  std::int64_t rounds = 0;
  std::int64_t total_rounds = 0;  ///< sum_v T_v
};

class Engine {
 public:
  explicit Engine(const graph::Tree& tree) : tree_(tree) {}

  RunStats run(Program& program, std::int64_t max_rounds) {
    const std::size_t n = static_cast<std::size_t>(tree_.size());
    round_ = 0;
    prev_.assign(n, {});
    next_.assign(n, {});
    terminated_.assign(n, false);
    term_round_.assign(n, 0);

    std::vector<graph::NodeId> alive;
    alive.reserve(n);
    for (graph::NodeId v = 0; v < tree_.size(); ++v) {
      NodeCtx ctx(*this, v);
      program.on_init(ctx);
      if (!terminated_[static_cast<std::size_t>(v)]) alive.push_back(v);
    }
    prev_.swap(next_);
    next_ = prev_;

    while (!alive.empty()) {
      ++round_;
      if (round_ > max_rounds) {
        throw std::runtime_error("legacy::Engine: round limit exceeded");
      }
      std::vector<graph::NodeId> still_alive;
      still_alive.reserve(alive.size());
      for (graph::NodeId v : alive) {
        NodeCtx ctx(*this, v);
        program.on_round(ctx);
        if (!terminated_[static_cast<std::size_t>(v)]) {
          still_alive.push_back(v);
        }
      }
      for (graph::NodeId v : alive) {
        prev_[static_cast<std::size_t>(v)] =
            next_[static_cast<std::size_t>(v)];
      }
      alive = std::move(still_alive);
    }

    RunStats stats;
    stats.rounds = round_;
    for (const std::int64_t t : term_round_) stats.total_rounds += t;
    return stats;
  }

 private:
  friend class NodeCtx;

  const graph::Tree& tree_;
  std::int64_t round_ = 0;
  std::vector<Register> prev_;
  std::vector<Register> next_;
  std::vector<bool> terminated_;
  std::vector<std::int64_t> term_round_;
};

inline std::int64_t NodeCtx::round() const { return engine_.round_; }

inline int NodeCtx::degree() const { return engine_.tree_.degree(v_); }

inline const Register& NodeCtx::peek(int port) const {
  const graph::NodeId u =
      engine_.tree_.neighbors(v_)[static_cast<std::size_t>(port)];
  return engine_.prev_[static_cast<std::size_t>(u)];
}

inline const Register& NodeCtx::peek_self() const {
  return engine_.prev_[static_cast<std::size_t>(v_)];
}

inline void NodeCtx::publish(Register reg) {
  engine_.next_[static_cast<std::size_t>(v_)] = std::move(reg);
}

inline void NodeCtx::terminate(int /*primary*/) {
  if (engine_.terminated_[static_cast<std::size_t>(v_)]) {
    throw std::logic_error("legacy::NodeCtx: double termination");
  }
  engine_.terminated_[static_cast<std::size_t>(v_)] = true;
  engine_.term_round_[static_cast<std::size_t>(v_)] = engine_.round_;
}

}  // namespace lcl::bench::legacy
