// E2 — Theorem 11 (and Corollary 10): k-hierarchical 3.5-coloring has
// deterministic node-averaged complexity Theta((log* n)^{1/2^{k-1}}) and
// worst case Theta(log* n).
//
// The virtual-log* knob Lambda stands in for log* n (DESIGN.md
// Substitution 1): instances are Definition-18 lower-bound graphs with
// ell_i = t^{2^{i-1}}, t = Lambda^{1/2^{k-1}}; the generic algorithm runs
// with the matching gammas and its level-k 3-coloring costs ~Lambda
// rounds. The fitted exponent of node-average vs Lambda is compared to
// the paper's 1/2^{k-1}. A baseline row reproduces the prior-work
// Theta(n^{1/(2k-1)}) for the 2.5 variant (BBK+23b), fit against n.
#include <cstdio>

#include "algo/generic_hier.hpp"
#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_35(int k, std::int64_t lambda, std::int64_t target_n,
                         std::uint64_t seed) {
  // ell_i = gamma_i exactly: level-i paths sit right at the Decline
  // threshold, the regime of the Definition-18 lower bound.
  std::vector<std::int64_t> ell = algo::gammas_for_35(lambda, k);
  std::int64_t prod = 1;
  for (auto l : ell) prod *= l;
  ell.push_back(std::max<std::int64_t>(2, target_n / prod));

  auto inst = graph::make_hierarchical_lower_bound(ell);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::SolverConfig cfg;
  cfg.set("k", k);
  cfg.set("gammas", algo::gammas_for_35(lambda, k));
  cfg.set("symmetry_pad", lambda);
  const auto run =
      algo::run_registered(algo::solver("generic_hier_35"), inst.tree, cfg);
  return core::measure_run(static_cast<double>(lambda), run.stats,
                           run.verdict);
}

core::MeasuredRun run_25(int k, std::int64_t target_n, std::uint64_t seed) {
  // ell_i = gamma_i exactly (see run_35); gammas derive from target_n so
  // rounding cannot flip the Decline/color regime across the sweep.
  std::vector<std::int64_t> ell = algo::gammas_for_25(target_n, k);
  std::int64_t prod = 1;
  for (auto l : ell) prod *= l;
  ell.push_back(std::max<std::int64_t>(2, target_n / prod));

  auto inst = graph::make_hierarchical_lower_bound(ell);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::SolverConfig cfg;
  cfg.set("k", k);
  cfg.set("gammas", algo::gammas_for_25(target_n, k));
  const auto run =
      algo::run_registered(algo::solver("generic_hier_25"), inst.tree, cfg);
  return core::measure_run(static_cast<double>(inst.tree.size()),
                           run.stats, run.verdict);
}

}  // namespace

namespace lcl::bench {

void run_thm11_hier35(ScenarioContext& ctx) {
  std::printf("== E2: Theorem 11 — k-hierarchical 3.5-coloring ==\n\n");
  const std::int64_t target_n = ctx.scaled(60000);
  for (int k : {2, 3}) {
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t lambda : {64, 192, 576, 1728, 5184}) {
      core::BatchJob job;
      job.label = "hier35-L" + std::to_string(lambda);
      job.scale = static_cast<double>(lambda);
      job.seed = static_cast<std::uint64_t>(11 * k + lambda);
      job.run = [k, lambda, target_n](std::uint64_t seed) {
        return run_35(k, lambda, target_n, seed);
      };
      jobs.push_back(std::move(job));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    const double predicted = 1.0 / (1 << (k - 1));
    char title[128];
    std::snprintf(title, sizeof(title),
                  "3.5-coloring, k=%d: node-avg ~ Lambda^{1/2^{k-1}}", k);
    ctx.report(title, "Lambda", predicted, predicted, std::move(runs));
  }

  std::printf("Baseline (prior work, BBK+23b): 2.5-coloring "
              "Theta(n^{1/(2k-1)})\n\n");
  for (int k : {2, 3}) {
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t base : {20000, 60000, 180000, 540000}) {
      const std::int64_t n = ctx.scaled(base);
      core::BatchJob job;
      job.label = "hier25-n" + std::to_string(n);
      job.scale = static_cast<double>(n);
      job.seed = static_cast<std::uint64_t>(5 * k + n);
      job.run = [k, n](std::uint64_t seed) { return run_25(k, n, seed); };
      jobs.push_back(std::move(job));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    const double predicted = 1.0 / (2 * k - 1);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "2.5-coloring, k=%d: node-avg ~ n^{1/(2k-1)}", k);
    ctx.report(title, "n", predicted, predicted, std::move(runs));
  }
}

}  // namespace lcl::bench
