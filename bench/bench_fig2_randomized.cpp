// E13 — the randomized side of Figures 1/2: on bounded-degree trees,
// randomized node-averaged complexity is either O(1) or n^{Omega(1)}
// (no randomized analogue of the (log* n)^c ladder exists; BBK+23b,
// restated in the paper's introduction and Figure 2).
//
// Witnesses:
//  * O(1) side — randomized 3-coloring of paths: node-average stays flat
//    while n grows, and far below the deterministic Theta(log*) cost.
//  * n^{Omega(1)} side — 2-coloring of paths: randomization cannot help
//    (Corollary 60's argument is ID-oblivious); measured linear.
#include <cstdio>
#include <vector>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace lcl::bench {

void run_fig2_randomized(ScenarioContext& ctx) {
  std::printf("== E13: randomized dichotomy (Fig. 1/2): O(1) or "
              "n^{Omega(1)} ==\n\n");

  std::printf("randomized 3-coloring of paths (O(1) side):\n");
  std::printf("  %10s %12s %14s %16s\n", "n", "node-avg", "worst-case",
              "det node-avg");
  double rnd_first = 0.0, rnd_last = 0.0;
  for (const std::int64_t base : {4000, 16000, 64000, 256000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    graph::Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled,
                      static_cast<std::uint64_t>(n));
    algo::SolverConfig rnd_cfg;
    rnd_cfg.set("colors", 3);
    rnd_cfg.seed = 77;
    const auto rnd =
        algo::run_registered(algo::solver("random_coloring"), t, rnd_cfg);
    algo::SolverConfig det_cfg;
    det_cfg.set("k", 1);
    const auto det = algo::run_registered(
        algo::solver("generic_hier_35"), t, det_cfg);
    std::printf("  %10d %12.2f %14lld %16.2f %s\n", n,
                rnd.stats.node_averaged,
                static_cast<long long>(rnd.stats.worst_case),
                det.stats.node_averaged, rnd.verdict.ok ? "" : "INVALID");
    if (rnd_first == 0.0) rnd_first = rnd.stats.node_averaged;
    rnd_last = rnd.stats.node_averaged;
  }
  ctx.metric("randomized_growth_ratio", rnd_last / rnd_first);
  std::printf("  -> flat in n (O(1)); deterministic pays the log* "
              "schedule.\n\n");

  std::printf("2-coloring of paths (n^{Omega(1)} side; randomness "
              "cannot help):\n");
  std::vector<core::Sample> samples;
  for (const std::int64_t base : {2000, 8000, 32000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    graph::Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled, 3);
    algo::SolverConfig cfg;
    cfg.set("k", 1);
    const auto run =
        algo::run_registered(algo::solver("generic_hier_25"), t, cfg);
    std::printf("  n=%6d: node-avg %10.1f\n", n,
                run.stats.node_averaged);
    samples.push_back({static_cast<double>(n), run.stats.node_averaged});
  }
  const auto fit = core::fit_power_law(samples);
  if (fit.ok) {
    std::printf("  fitted exponent %.3f — squarely on the polynomial "
                "side.\n\n", fit.exponent);
    ctx.metric("two_coloring_exponent", fit.exponent);
  } else {
    std::printf("  fitted exponent: (degenerate sweep, no fit)\n\n");
  }
  std::printf("No randomized class exists strictly between: the paper's\n"
              "Figure 2 marks the whole omega(1)..n^{o(1)} randomized "
              "band as a gap.\n");
}

}  // namespace lcl::bench
