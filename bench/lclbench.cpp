// Unified experiment runner: every paper scenario behind one CLI.
#include "scenario.hpp"

int main(int argc, char** argv) {
  return lcl::bench::cli_main(argc, argv, /*forced_scenario=*/"");
}
