// Unified experiment runner: every paper scenario behind one CLI.
// Flags (see cli_main in scenario.cpp): --list, --run <name|all>,
// --n <scale>, --reps <r>, --threads <t>, --seed <s>,
// --engine <scalar|simd|auto>, --families <csv|all>, --json [path],
// --binary [path]; plus the
// snapshot tooling: the pairwise regression gate --compare <old> <new>,
// the long-horizon trend gate --history <snap> <snap>...
// [--trend-window <k>], and the lossless JSON <-> .lclb converter
// --export <in> <out> (see bench/compare.hpp and core/snapshot.hpp for
// the checks, formats, and exit codes).
#include "scenario.hpp"

int main(int argc, char** argv) {
  return lcl::bench::cli_main(argc, argv, /*forced_scenario=*/"");
}
