// Unified experiment runner: every paper scenario behind one CLI.
// Flags (see cli_main in scenario.cpp): --list, --run <name|all>,
// --n <scale>, --reps <r>, --threads <t>, --seed <s>,
// --families <csv|all>, --json [path]; plus the snapshot regression
// gate --compare <old.json> <new.json> [--tol-exponent <e>]
// [--tol-avg <rel>] [--tol-wall <ratio>] [--allow-missing]
// (see bench/compare.hpp for the checks and exit codes).
#include "scenario.hpp"

int main(int argc, char** argv) {
  return lcl::bench::cli_main(argc, argv, /*forced_scenario=*/"");
}
