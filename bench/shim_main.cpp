// Thin per-scenario shim: `bench_<name>` behaves like the historical
// standalone experiment binary but routes through the lclbench registry.
//
// One shared parse path for every shim: the scenario name is resolved
// from the executable's own name (argv[0], basename, `bench_` prefix
// stripped) instead of a per-target compile definition, so all shim
// binaries are builds of this single translation unit and adding a
// scenario to the registry needs no new plumbing — only a CMake target
// name. An unknown or unprefixed name falls through to cli_main's
// normal scenario validation and usage error.
#include <string>

#include "scenario.hpp"

int main(int argc, char** argv) {
  std::string name = argc > 0 && argv[0] != nullptr ? argv[0] : "";
  const std::size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  constexpr const char kPrefix[] = "bench_";
  if (name.rfind(kPrefix, 0) == 0) {
    name = name.substr(sizeof(kPrefix) - 1);
  }
  return lcl::bench::cli_main(argc, argv, name);
}
