// Thin per-scenario shim: `bench_<name>` behaves like the historical
// standalone experiment binary but routes through the lclbench registry.
// The scenario name is injected per target by CMake.
#include "scenario.hpp"

#ifndef LCLBENCH_SCENARIO
#error "LCLBENCH_SCENARIO must be defined to the registry name"
#endif

int main(int argc, char** argv) {
  return lcl::bench::cli_main(argc, argv, LCLBENCH_SCENARIO);
}
