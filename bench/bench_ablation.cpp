// E14 — Ablations of the design choices DESIGN.md calls out:
//
//  (a) weight handling: Algorithm A's d-free solution (efficiency
//      x = log(D-d-1)/log(D-1)) vs the naive "every weight node copies"
//      strawman (x = 1). The naive variant is still a valid Pi^{2.5}
//      output but its node-average degrades — exactly the gap between
//      Theorem 2's exponent alpha1(x) and the worst-case 1/k.
//
//  (b) gamma profile: the Lemma-14/33 geometric profile
//      gamma_i = t^{2^{i-1}} vs a uniform profile on the unweighted
//      k-hierarchical 2.5-coloring instance — the optimization is what
//      buys n^{1/(2k-1)} instead of n^{1/k}.
//
//  (c) fast-decomposition early resolution: with the eager A-free
//      Decline rule (Corollary-47 decay) vs without — the backlog of
//      unfinished nodes, i.e. the Decline mass's total waiting time.
#include <cmath>
#include <cstdio>

#include "algo/fast_decomp.hpp"
#include "algo/generic_hier.hpp"
#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/labels.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

void ablation_weight_handling(bench::ScenarioContext& ctx) {
  std::printf("(a) weight handling: Algorithm A vs naive all-copy\n");
  std::printf("  %10s %16s %16s\n", "n", "AlgoA node-avg",
              "naive node-avg");
  const double x = core::efficiency_x(5, 2);
  const auto alphas = core::alpha_profile_poly(x, 2);
  double smart_last = 0.0, naive_last = 0.0;
  for (const std::int64_t base : {20000, 60000, 180000}) {
    const std::int64_t n = ctx.scaled(base);
    const auto ell = core::lower_bound_lengths(
        alphas, static_cast<double>(n), n);
    auto inst = graph::make_weighted_construction(ell, 5);
    graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 3);
    const algo::SolverSpec& spec = algo::solver("apoly");
    algo::SolverConfig cfg;
    cfg.set("k", 2);
    cfg.set("d", 2);
    cfg.set("gammas", std::vector<std::int64_t>{std::max<std::int64_t>(
                          2, inst.skeleton_lengths[0])});
    const auto smart = algo::run_registered(spec, inst.tree, cfg);
    cfg.set("naive_all_copy", 1);
    const auto naive = algo::run_registered(spec, inst.tree, cfg);
    std::printf("  %10d %16.2f %16.2f %s%s\n", inst.tree.size(),
                smart.stats.node_averaged, naive.stats.node_averaged,
                smart.verdict.ok ? "" : "SMART-INVALID ",
                naive.verdict.ok ? "" : "NAIVE-INVALID");
    smart_last = smart.stats.node_averaged;
    naive_last = naive.stats.node_averaged;
  }
  ctx.metric("weight_naive_over_smart", naive_last / smart_last);
  std::printf("  -> the d-free machinery keeps most weight from waiting; "
              "naive copies pay the full level-k latency.\n\n");
}

void ablation_gamma_profile(bench::ScenarioContext& ctx) {
  // Each profile faces its own adversarial instance: the adversary sets
  // the level-1 path length to exactly gamma_1, the Decline threshold
  // (Lemma 20's dichotomy), so the algorithm pays its full budget.
  std::printf("(b) gamma profile on unweighted 2.5-coloring (k = 2), "
              "adversarial instances\n");
  std::printf("  %10s %22s %22s\n", "n", "geometric (vs n^{1/3})",
              "uniform n^{1/2}");
  double geo_last = 0.0, uni_last = 0.0;
  for (const std::int64_t base : {30000, 120000, 480000}) {
    const std::int64_t n = ctx.scaled(base);
    auto run_with_gamma = [&](std::int64_t gamma1) {
      std::vector<std::int64_t> ell = {gamma1,
                                       std::max<std::int64_t>(2, n / gamma1)};
      auto inst = graph::make_hierarchical_lower_bound(ell);
      graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 5);
      algo::SolverConfig cfg;
      cfg.set("k", 2);
      cfg.set("gammas", std::vector<std::int64_t>{gamma1});
      return algo::run_registered(algo::solver("generic_hier_25"),
                                  inst.tree, cfg)
          .stats.node_averaged;
    };
    const std::int64_t g_geo = algo::gammas_for_25(n, 2)[0];
    const std::int64_t g_uni = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(
               std::llround(std::sqrt(static_cast<double>(n)))));
    geo_last = run_with_gamma(g_geo);
    uni_last = run_with_gamma(g_uni);
    std::printf("  %10lld %22.2f %22.2f\n", static_cast<long long>(n),
                geo_last, uni_last);
  }
  ctx.metric("gamma_uniform_over_geometric", uni_last / geo_last);
  std::printf("  -> tuned to t = n^{1/3} the worst instance costs "
              "~n^{1/3}; a uniform n^{1/2} threshold hands the adversary "
              "a ~n^{1/2} bill (Lemma 14 vs the naive profile).\n\n");
}

void ablation_early_resolution(bench::ScenarioContext& ctx) {
  std::printf("(c) fast-decomposition early resolution (Corollary 47)\n");
  std::printf("  %10s %20s %20s\n", "w", "backlog/w with",
              "backlog/w without");
  double with_last = 0.0, without_last = 0.0;
  for (const std::int64_t base : {4000, 16000, 64000, 256000}) {
    const auto w = static_cast<graph::NodeId>(ctx.scaled(base));
    graph::Tree t = graph::make_balanced_weight_tree(w, 7);
    std::vector<char> part(static_cast<std::size_t>(w), 1);
    std::vector<char> is_a(static_cast<std::size_t>(w), 0);
    is_a[0] = 1;
    t.set_input(0, static_cast<int>(problems::DFreeInput::kA));
    for (graph::NodeId v = 1; v < w; ++v) {
      t.set_input(v, static_cast<int>(problems::DFreeInput::kW));
    }
    auto backlog = [](const algo::FastDecompPlan& plan) {
      std::int64_t total = 0;
      for (std::int64_t c : plan.unfinished_after_iteration) total += c;
      return total;
    };
    const auto with_rule =
        algo::run_fast_decomposition(t, part, is_a, 3, true);
    const auto without_rule =
        algo::run_fast_decomposition(t, part, is_a, 3, false);
    with_last = static_cast<double>(backlog(with_rule)) / w;
    without_last = static_cast<double>(backlog(without_rule)) / w;
    std::printf("  %10d %20.2f %20.2f\n", w, with_last, without_last);
  }
  ctx.metric("backlog_with_rule", with_last);
  ctx.metric("backlog_without_rule", without_last);
  std::printf("  -> per-node backlog (= average waiting of the Decline "
              "mass) stays O(1) with the rule and grows like the tree "
              "depth (log w) without it.\n");
}

}  // namespace

namespace lcl::bench {

void run_ablation(ScenarioContext& ctx) {
  std::printf("== E14: ablations ==\n\n");
  ablation_weight_handling(ctx);
  ablation_gamma_profile(ctx);
  ablation_early_resolution(ctx);
}

}  // namespace lcl::bench
