// Registry coverage: sweep the genuinely distributed rake-and-compress
// decomposition program (Lemma 72's in-model counterpart — the one solver
// every bounded-degree tree admits) across the named instance families
// selected by --families. Guards the family registry end to end: every
// family builds through the per-thread arena, runs on the engine's native
// CSR, and is certified end to end, with per-family build times recorded
// for the allocation-cost trajectory. The solver itself is resolved from
// the algorithm registry ("rake_compress"), whose spec carries the
// decode-and-validate certifier; `core::make_solver_job` is the whole
// wiring. The full algorithm x family cross-product lives in the
// solver_matrix scenario.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/batch.hpp"
#include "graph/families.hpp"
#include "scenario.hpp"

namespace lcl::bench {

namespace {

constexpr int kGamma = 1;
constexpr int kEll = 4;

}  // namespace

void run_family_sweep(ScenarioContext& ctx) {
  // cli_main resolves an empty selection to every tree family before any
  // scenario runs, so this is a plain read.
  const std::vector<std::string>& families = ctx.opts().families;

  std::printf(
      "== family sweep: distributed (gamma=1, ell=4) decomposition over "
      "%zu instance families ==\n\n",
      families.size());

  int families_valid = 0;
  for (const std::string& family : families) {
    // Per-family base seed from the stable name hash, so a family's
    // instances are identical no matter which other families were
    // selected alongside it — single-family reruns reproduce the full
    // sweep exactly.
    const std::uint64_t family_seed = core::stable_name_seed(family);
    // The solver, its options, and the decode-and-validate certifier all
    // come from the algorithm registry now — this scenario only names
    // them.
    algo::SolverConfig decomp_cfg;
    decomp_cfg.set("gamma", kGamma);
    decomp_cfg.set("ell", kEll);
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t base : {2000, 6000, 18000, 54000}) {
      const auto n = static_cast<graph::NodeId>(ctx.scaled(base, 8));
      // Relaxed gamma=1 decompositions finish in O(log n) windows of
      // 2*gamma + ell + 3 rounds; the bound below only trips on
      // non-forest inputs (which must fail loudly, not hang).
      const std::int64_t max_rounds =
          (2 * kGamma + kEll + 3) *
          (4 * std::bit_width(static_cast<std::uint64_t>(n)) + 16);
      jobs.push_back(core::make_solver_job(
          family + "-" + std::to_string(n), static_cast<double>(n),
          /*seed=*/family_seed + static_cast<std::uint64_t>(n),
          "rake_compress", decomp_cfg, family, n, /*delta=*/0,
          max_rounds));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    bool all_valid = true;
    double build_ms = 0.0;
    for (const core::MeasuredRun& r : runs) {
      all_valid = all_valid && r.ok();
      build_ms = r.build_ms;  // keep the largest instance's build time
    }
    families_valid += all_valid ? 1 : 0;
    // Decomposition terminates within O(log n) windows, so the fitted
    // node-average exponent should sit near 0 (well under the 0.5 of the
    // polynomial regime's midpoint).
    ctx.report("family_sweep: " + family + " (distributed rake&compress)",
               "n", 0.0, 0.5, std::move(runs));
    ctx.metric("build_ms_" + family, build_ms);
  }
  ctx.metric("families_swept", static_cast<double>(families.size()));
  ctx.metric("families_valid", static_cast<double>(families_valid));
  std::printf("  %d/%zu families fully valid\n\n", families_valid,
              families.size());
}

}  // namespace lcl::bench
