// lclbench scenario registry.
//
// Every paper experiment (E1..E14 plus the engine micro-benchmark) is a
// *scenario*: a named function from run options to a structured result.
// The unified `lclbench` CLI lists and runs scenarios, prints the familiar
// experiment tables, and can serialize every run into a machine-readable
// BENCH_*.json snapshot (schema lclbench-v3: termination-round
// distributions, rep spread, and RunStatus per run) so the perf
// trajectory is tracked across PRs; `lclbench --compare old new` diffs
// two snapshots and exits nonzero on regression (see compare.hpp). The
// historical one-binary-per-experiment targets are thin shims over this
// registry (see shim_main.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/experiment.hpp"
#include "core/fitting.hpp"

namespace lcl::bench {

/// Options shared by all scenarios, set from the CLI.
struct ScenarioOptions {
  /// Multiplier applied to every scenario's instance sizes (--n). 1.0 runs
  /// the paper-scale sweeps; 0.1 is a smoke run.
  double n_scale = 1.0;
  /// Repetitions per measurement point with distinct derived seeds (--reps);
  /// points are averaged over the repetitions.
  int reps = 1;
  /// Worker threads for the batched sweeps (--threads; 0 = hardware).
  int threads = 0;
  /// Global seed (--seed) mixed into every job's derived seed; 0
  /// reproduces the historical sweeps exactly. Recorded in BENCH_*.json.
  std::uint64_t seed = 0;
  /// Instance families swept by family-driven scenarios (--families;
  /// names from graph/families.hpp). cli_main resolves an empty
  /// selection to every tree family before scenarios run. Recorded in
  /// BENCH_*.json.
  std::vector<std::string> families;
  /// Solvers swept by algorithm-driven scenarios (--algos; names from
  /// algo/registry.hpp). cli_main resolves an empty selection to every
  /// registered solver before scenarios run. Recorded in BENCH_*.json.
  std::vector<std::string> algos;
  /// Raw --algo-opt key=value pairs. Each is applied to every selected
  /// solver that declares the key (validated by cli_main against the
  /// registry). Recorded in BENCH_*.json.
  std::vector<std::string> algo_opts;
  /// Engine kernel selection (--engine scalar|simd|auto). cli_main sets
  /// the process-wide default kernel mode from it before scenarios run
  /// and resolves "auto" to the concrete path for the snapshot, so
  /// every BENCH_*.json records which kernels produced it. Recorded in
  /// BENCH_*.json (additive to schema lclbench-v3).
  std::string engine = "auto";
  /// Program dispatch selection (--dispatch pernode|batch|auto). cli_main
  /// sets the process-wide default dispatch mode from it before scenarios
  /// run and resolves "auto" to the concrete contract for the snapshot.
  /// Recorded in BENCH_*.json (additive to schema lclbench-v3).
  std::string dispatch = "auto";
  /// Distinct sampled LCL problems the problem_sweep scenario classifies
  /// and certifies (--problems). Recorded in BENCH_*.json.
  int problems = 60;
  /// Base seed of the problem generator (--problem-seed); every sampled
  /// table's own sub-seed derives from it and is what the snapshot
  /// reports per problem. Recorded in BENCH_*.json.
  std::uint64_t problem_seed = 1;
};

/// One fitted sweep: (scale, node-averaged) samples plus the paper's
/// predicted exponent range.
struct Series {
  std::string title;
  std::string scale_name;  ///< "n" or "Lambda"
  double predicted_lo = 0.0;
  double predicted_hi = 0.0;
  std::vector<core::MeasuredRun> runs;
};

/// Structured outcome of one scenario run.
struct ScenarioResult {
  std::vector<Series> series;
  /// Bespoke scalar metrics (throughputs, speedups, verdict counts, ...).
  std::map<std::string, double> metrics;
};

/// Execution context handed to scenario functions: shared thread pool and
/// helpers that apply the CLI options uniformly.
class ScenarioContext {
 public:
  ScenarioContext(const ScenarioOptions& opts, core::BatchRunner& pool)
      : opts_(opts), pool_(pool) {}

  [[nodiscard]] const ScenarioOptions& opts() const { return opts_; }
  [[nodiscard]] core::BatchRunner& pool() { return pool_; }

  /// Scales a base instance size by --n (never below `floor`).
  [[nodiscard]] std::int64_t scaled(std::int64_t base,
                                    std::int64_t floor = 2) const;

  /// Runs one sweep through the pool: each point is expanded into
  /// opts().reps jobs with derived seeds, executed in parallel, and
  /// aggregated back into one MeasuredRun per point (order preserved).
  /// Statistics — mean/stddev/min/max of node-averaged, the pooled
  /// termination histogram, max worst-case — cover the *ok* repetitions
  /// only; build_ms averages the reps that recorded one (the -1 "not
  /// recorded" sentinel is never treated as a sample). A point's status
  /// is kOk iff every repetition's was, else the first failing rep's
  /// status and reason. When *no* rep is ok, the statistics fall back to
  /// the measured non-ok reps (truncated / check-failed), so a
  /// fully-truncated point still reports its censored lower bounds
  /// under the non-ok status instead of zeroing out.
  std::vector<core::MeasuredRun> run_sweep(std::vector<core::BatchJob> jobs);

  /// Prints the classic experiment table and records the series in the
  /// result (the normal exit path for fitted sweeps).
  void report(const std::string& title, const std::string& scale_name,
              double predicted_lo, double predicted_hi,
              std::vector<core::MeasuredRun> runs);

  /// Records a series without the table print — for scenarios with many
  /// small series (the solver_matrix cross-product) that print their own
  /// compact summary instead.
  void record(const std::string& title, const std::string& scale_name,
              double predicted_lo, double predicted_hi,
              std::vector<core::MeasuredRun> runs);

  /// Records a bespoke scalar metric (also used by the JSON snapshot).
  void metric(const std::string& key, double value);

  /// Structured result accumulated by report()/metric().
  [[nodiscard]] ScenarioResult& result() { return result_; }

 private:
  const ScenarioOptions& opts_;
  core::BatchRunner& pool_;
  ScenarioResult result_;
};

/// A registered scenario. `run` prints its human-readable report as a side
/// effect (shims behave exactly like the historical per-bench mains) and
/// accumulates structure in the context.
struct Scenario {
  std::string name;
  std::string summary;
  void (*run)(ScenarioContext& ctx);
};

/// The full registry, in landscape order. Names are stable CLI/JSON keys.
[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// Unified CLI entry point (used by lclbench's main and the per-scenario
/// shims). `forced_scenario` non-empty pins --run to that scenario.
int cli_main(int argc, char** argv, const std::string& forced_scenario);

// Scenario functions, one per paper experiment (defined in bench_*.cpp).
void run_fig2_landscape(ScenarioContext& ctx);       // E1
void run_thm11_hier35(ScenarioContext& ctx);         // E2
void run_thm2_pi25(ScenarioContext& ctx);            // E3
void run_thm4_pi35(ScenarioContext& ctx);            // E4
void run_thm1_density(ScenarioContext& ctx);         // E5
void run_thm6_density(ScenarioContext& ctx);         // E6
void run_lemma69_weightaug(ScenarioContext& ctx);    // E7
void run_cor60_gap(ScenarioContext& ctx);            // E8
void run_thm7_decidability(ScenarioContext& ctx);    // E9
void run_lemma72_decomposition(ScenarioContext& ctx);  // E10
void run_lemma23_dfree(ScenarioContext& ctx);        // E11
void run_linial_logstar(ScenarioContext& ctx);       // E12
void run_fig2_randomized(ScenarioContext& ctx);      // E13
void run_ablation(ScenarioContext& ctx);             // E14
void run_engine_micro(ScenarioContext& ctx);         // substrate micro
void run_family_sweep(ScenarioContext& ctx);         // registry coverage
void run_solver_matrix(ScenarioContext& ctx);        // algo x family matrix
void run_problem_sweep(ScenarioContext& ctx);        // sampled-LCL sweep
void run_service_sweep(ScenarioContext& ctx);        // lcld load generator

}  // namespace lcl::bench
