#include "scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "algo/registry.hpp"
#include "compare.hpp"
#include "core/json.hpp"
#include "core/snapshot.hpp"
#include "graph/families.hpp"
#include "local/dispatch.hpp"
#include "local/simd.hpp"

namespace lcl::bench {

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // Integral values inside the exactly-representable double range are
  // printed in full: %.6g would silently round e.g. the 53-bit problem
  // seeds the problem_sweep metrics list per disagreement. The cutoff
  // logic is shared with core::json::dump so the golden round-trip
  // test keeps the writer and the serializer in sync.
  return core::json::format_number(v, "%.6g");
}

struct ScenarioReport {
  std::string name;
  double wall_ms = 0.0;
  ScenarioResult result;
};

/// Renders the snapshot JSON text (schema lclbench-v3). One renderer
/// feeds both sinks: `--json` writes these bytes verbatim, `--binary`
/// parses them into the DOM and encodes the .lclb form, so the two
/// artifacts of one run are views of identical data by construction.
std::string render_json(const ScenarioOptions& opts,
                        const std::vector<ScenarioReport>& reports,
                        double total_wall_ms) {
  std::ostringstream os;
  const std::time_t now = std::time(nullptr);
  char stamp[64];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));
  os << "{\n";
  os << "  \"schema\": \"lclbench-v3\",\n";
  os << "  \"timestamp\": \"" << stamp << "\",\n";
  os << "  \"n_scale\": " << json_number(opts.n_scale) << ",\n";
  os << "  \"reps\": " << opts.reps << ",\n";
  os << "  \"threads\": " << opts.threads << ",\n";
  os << "  \"seed\": " << opts.seed << ",\n";
  // Kernel provenance (additive to schema lclbench-v3): the resolved
  // engine path ("scalar" or "simd") every run in this snapshot used.
  os << "  \"engine\": \"" << json_escape(opts.engine) << "\",\n";
  // Dispatch provenance (additive to schema lclbench-v3): the resolved
  // Program↔Engine stepping contract ("pernode" or "batch") every run
  // in this snapshot used.
  os << "  \"dispatch\": \"" << json_escape(opts.dispatch) << "\",\n";
  // Problem-axis selection (additive to schema lclbench-v3): the
  // problem_sweep scenario's sampled-problem count and generator seed,
  // so snapshots pin exactly which LCLs were classified.
  os << "  \"problems\": " << opts.problems << ",\n";
  os << "  \"problem_seed\": " << opts.problem_seed << ",\n";
  os << "  \"families\": [";
  for (std::size_t i = 0; i < opts.families.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(opts.families[i])
       << "\"";
  }
  os << "],\n";
  // Algorithm-axis selection (additive to schema lclbench-v3): the
  // solvers swept by algorithm-driven scenarios and any --algo-opt
  // overrides, so snapshots record the full cross-product provenance.
  os << "  \"algos\": [";
  for (std::size_t i = 0; i < opts.algos.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(opts.algos[i]) << "\"";
  }
  os << "],\n";
  os << "  \"algo_opts\": [";
  for (std::size_t i = 0; i < opts.algo_opts.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(opts.algo_opts[i])
       << "\"";
  }
  os << "],\n";
  os << "  \"total_wall_ms\": " << json_number(total_wall_ms) << ",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t si = 0; si < reports.size(); ++si) {
    const ScenarioReport& rep = reports[si];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(rep.name) << "\",\n";
    os << "      \"wall_ms\": " << json_number(rep.wall_ms) << ",\n";
    os << "      \"metrics\": {";
    std::size_t mi = 0;
    for (const auto& [key, value] : rep.result.metrics) {
      os << (mi++ ? ", " : "") << "\"" << json_escape(key)
         << "\": " << json_number(value);
    }
    os << "},\n";
    os << "      \"series\": [\n";
    for (std::size_t i = 0; i < rep.result.series.size(); ++i) {
      const Series& s = rep.result.series[i];
      os << "        {\n";
      os << "          \"title\": \"" << json_escape(s.title) << "\",\n";
      os << "          \"scale_name\": \"" << json_escape(s.scale_name)
         << "\",\n";
      os << "          \"predicted_lo\": " << json_number(s.predicted_lo)
         << ",\n";
      os << "          \"predicted_hi\": " << json_number(s.predicted_hi)
         << ",\n";
      const core::PowerFit fit = core::fit_power_law(core::to_samples(s.runs));
      if (fit.ok) {
        os << "          \"fitted_exponent\": "
           << json_number(fit.exponent) << ",\n";
        os << "          \"r_squared\": " << json_number(fit.r_squared)
           << ",\n";
      }
      os << "          \"runs\": [";
      for (std::size_t r = 0; r < s.runs.size(); ++r) {
        const core::MeasuredRun& run = s.runs[r];
        os << (r ? ", " : "") << "{\"scale\": " << json_number(run.scale)
           << ", \"n\": " << run.n
           << ", \"node_averaged\": " << json_number(run.node_averaged)
           << ", \"worst_case\": " << run.worst_case;
        // Omitted entirely when the job did not measure construction
        // time, so a reader never mistakes "unrecorded" for "0 ms".
        if (run.build_ms >= 0.0) {
          os << ", \"build_ms\": " << json_number(run.build_ms);
        }
        // Termination-round distribution: exact tail percentiles (max is
        // worst_case) plus the log-bucketed histogram — bucket 0 is
        // T_v == 0, bucket b >= 1 is T_v in [2^(b-1), 2^b - 1].
        os << ", \"term_p50\": " << run.term.p50
           << ", \"term_p90\": " << run.term.p90
           << ", \"term_p99\": " << run.term.p99;
        os << ", \"term_hist\": [";
        for (std::size_t b = 0; b < run.term.hist.size(); ++b) {
          os << (b ? ", " : "") << run.term.hist[b];
        }
        os << "]";
        // Repetition spread (mean is node_averaged itself; at reps == 1
        // the spread degenerates to stddev 0, min == max == mean).
        os << ", \"reps\": " << run.reps << ", \"reps_ok\": " << run.reps_ok
           << ", \"na_stddev\": " << json_number(run.na_stddev)
           << ", \"na_min\": " << json_number(run.na_min)
           << ", \"na_max\": " << json_number(run.na_max);
        os << ", \"status\": \"" << core::to_string(run.status) << "\""
           << ", \"valid\": " << (run.ok() ? "true" : "false");
        if (!run.ok() && !run.check_reason.empty()) {
          os << ", \"check_reason\": \"" << json_escape(run.check_reason)
             << "\"";
        }
        os << "}";
      }
      os << "]\n";
      os << "        }" << (i + 1 < rep.result.series.size() ? "," : "")
         << "\n";
    }
    os << "      ]\n";
    os << "    }" << (si + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void write_json(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
  if (!f) {
    std::fprintf(stderr, "lclbench: failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

void write_binary(const std::string& path, const std::string& json_text) {
  try {
    core::snapshot::write_file(path, core::json::parse(json_text));
    std::printf("wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclbench: failed to write %s: %s\n",
                 path.c_str(), e.what());
  }
}

/// --export: load either snapshot form, write the other (or the same)
/// by destination extension. The JSON side goes through
/// `core::json::dump`, the canonical serializer the golden round-trip
/// test pins — exporting a .lclb made from a dump-canonical JSON file
/// reproduces that file byte-identically.
int export_snapshot(const std::string& in_path,
                    const std::string& out_path) {
  try {
    const core::json::Value v = core::snapshot::load_any(in_path);
    const bool to_binary =
        out_path.size() >= 5 &&
        out_path.compare(out_path.size() - 5, 5, ".lclb") == 0;
    if (to_binary) {
      core::snapshot::write_file(out_path, v);
    } else {
      std::ofstream f(out_path, std::ios::binary);
      f << core::json::dump(v);
      if (!f) {
        throw std::runtime_error("cannot write " + out_path);
      }
    }
    std::printf("exported %s -> %s\n", in_path.c_str(), out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclbench --export: %s\n", e.what());
    return 2;
  }
}

void print_usage() {
  std::printf(
      "lclbench — unified runner for the paper's experiment scenarios\n"
      "\n"
      "usage: lclbench [--list] [--list-algos] [--run <name|all>]\n"
      "                [--n <scale>] [--reps <r>] [--threads <t>]\n"
      "                [--seed <s>] [--engine <scalar|simd|auto>]\n"
      "                [--dispatch <pernode|batch|auto>]\n"
      "                [--families <csv|all>]\n"
      "                [--algos <csv|all>] [--algo-opt <k=v>]...\n"
      "                [--problems <count>] [--problem-seed <s>]\n"
      "                [--json [path]] [--binary [path]]\n"
      "       lclbench --compare <old> <new>\n"
      "                [--tol-exponent <e>] [--tol-avg <rel>]\n"
      "                [--tol-wall <ratio>] [--allow-missing]\n"
      "       lclbench --history <snap> <snap> [<snap>...]\n"
      "                [--trend-window <k>] [--tol-exponent <e>]\n"
      "                [--tol-avg <rel>] [--tol-wall <ratio>]\n"
      "                [--allow-missing]\n"
      "       lclbench --export <in> <out>\n"
      "\n"
      "  --list          enumerate registered scenarios and exit\n"
      "  --list-algos    enumerate the algorithm registry (solvers,\n"
      "                  paper bindings, options) and exit\n"
      "  --run <name>    run one scenario, or `all` for the full sweep\n"
      "  --n <scale>     instance-size multiplier (default 1.0 = paper "
      "scale)\n"
      "  --reps <r>      repetitions per measurement point (default 1);\n"
      "                  points carry mean/stddev/min/max and a pooled\n"
      "                  termination histogram over the ok reps\n"
      "  --threads <t>   sweep worker threads (default: hardware)\n"
      "  --seed <s>      global seed mixed into every job seed (default 0\n"
      "                  = the historical deterministic sweeps)\n"
      "  --engine <m>    engine kernel path for every scenario: `scalar`\n"
      "                  (reference kernels), `simd` (wide kernels), or\n"
      "                  `auto` (default; widest compiled path). The\n"
      "                  resolved choice is recorded in the snapshot;\n"
      "                  results are bit-identical across modes\n"
      "  --dispatch <d>  Program↔Engine stepping contract: `pernode`\n"
      "                  (one virtual call per alive node), `batch`\n"
      "                  (span-level step kernels), or `auto` (default;\n"
      "                  batch). The resolved choice is recorded in the\n"
      "                  snapshot; results are bit-identical across modes\n"
      "  --families <f>  comma-separated instance families for the\n"
      "                  family-driven scenarios (default/`all` = every\n"
      "                  tree family in the registry)\n"
      "  --algos <a>     comma-separated solvers for the algorithm-driven\n"
      "                  scenarios, e.g. solver_matrix (default/`all` =\n"
      "                  every registered solver)\n"
      "  --algo-opt k=v  solver option override, repeatable; applied to\n"
      "                  every selected solver that declares the key\n"
      "                  (see --list-algos for keys and ranges)\n"
      "  --problems <p>  distinct sampled LCL problems for the\n"
      "                  problem_sweep scenario (default 60)\n"
      "  --problem-seed <s>  base seed of the problem generator\n"
      "                  (default 1); per-problem sub-seeds are recorded\n"
      "                  in the snapshot\n"
      "  --json [path]   write a BENCH_*.json snapshot (schema\n"
      "                  lclbench-v3; default path BENCH_<run>.json)\n"
      "  --binary [path] write the same snapshot as a compact columnar\n"
      "                  .lclb binary (default path BENCH_<run>.lclb);\n"
      "                  lossless — `--export` recovers the JSON view\n"
      "\n"
      "  every flag except --algo-opt may be given at most once;\n"
      "  duplicates are a usage error\n"
      "\n"
      "  --compare       diff two snapshots (JSON or .lclb, mixed\n"
      "                  freely) and exit nonzero on regression (schema,\n"
      "                  validity/status, exponent drift >\n"
      "                  --tol-exponent [0.15], node-averaged drift at\n"
      "                  matching scales > --tol-avg [off], wall-time\n"
      "                  ratio > --tol-wall [off]); --allow-missing\n"
      "                  downgrades missing scenarios/series to warnings\n"
      "  --history       order N >= 2 snapshots by timestamp and gate\n"
      "                  trajectories: latest-vs-previous coverage and\n"
      "                  validity plus *sustained* monotone drift (of\n"
      "                  fitted exponents, node-averages, wall time)\n"
      "                  across the last --trend-window [3] snapshots\n"
      "  --export        convert a snapshot between the JSON and .lclb\n"
      "                  forms (destination picked by extension); the\n"
      "                  JSON side is canonical core::json::dump text\n");
}

/// --list-algos: one block per registered solver — paper binding,
/// predicted complexity, declared input needs, and every option with its
/// default and range.
void print_algo_registry() {
  for (const algo::SolverSpec& s : algo::registry()) {
    std::printf("  %-18s %s\n", s.name.c_str(), s.summary.c_str());
    std::printf("    %-16s %s — %s\n", "solves:", s.problem.c_str(),
                s.theorem.c_str());
    std::printf("    %-16s %s\n", "node-averaged:", s.complexity.c_str());
    std::string needs;
    if (s.needs & algo::kNeedShuffledIds) needs += " shuffled-ids";
    if (s.needs & algo::kNeedWeightInputs) needs += " weight-marking";
    if (s.needs & algo::kNeedDFreeInputs) needs += " dfree-marking";
    if (s.needs & algo::kNeedRng) needs += " rng";
    std::printf("    %-16s%s\n", "needs:",
                needs.empty() ? " (topology only)" : needs.c_str());
    for (const algo::OptionSpec& o : s.options) {
      char range[64];
      std::snprintf(range, sizeof(range), "[%lld, %s]",
                    static_cast<long long>(o.min),
                    o.max > (std::int64_t{1} << 40)
                        ? "inf"
                        : std::to_string(o.max).c_str());
      if (o.is_list) {
        std::printf("      %-14s %-14s %s\n", o.key.c_str(),
                    (std::string("list ") + range).c_str(),
                    o.summary.c_str());
      } else {
        std::printf("      %-14s %-14s %s (default %lld)\n",
                    o.key.c_str(), range, o.summary.c_str(),
                    static_cast<long long>(o.def));
      }
    }
  }
}

}  // namespace

std::int64_t ScenarioContext::scaled(std::int64_t base,
                                     std::int64_t floor) const {
  const double scaled = static_cast<double>(base) * opts_.n_scale;
  return std::max<std::int64_t>(floor,
                                static_cast<std::int64_t>(std::llround(scaled)));
}

std::vector<core::MeasuredRun> ScenarioContext::run_sweep(
    std::vector<core::BatchJob> jobs) {
  const int reps = std::max(1, opts_.reps);
  std::vector<core::BatchJob> expanded;
  expanded.reserve(jobs.size() * static_cast<std::size_t>(reps));
  for (const core::BatchJob& job : jobs) {
    for (int r = 0; r < reps; ++r) {
      core::BatchJob rep = job;
      // Distinct deterministic seed per repetition, with the global
      // --seed mixed in; rep 0 at --seed 0 keeps the job's own seed so
      // the historical sweeps are reproduced exactly.
      rep.seed = job.seed +
                 static_cast<std::uint64_t>(r) * 0x9e3779b97f4a7c15ULL +
                 opts_.seed * 0xd1b54a32d192ed03ULL;
      expanded.push_back(std::move(rep));
    }
  }
  const std::vector<core::MeasuredRun> raw = pool_.run_all(expanded);
  // Aggregate each point's repetitions. Statistics (mean/stddev/min/max
  // of node-averaged, pooled T_v histogram, max worst-case) are computed
  // over the *ok* repetitions only, so a failed rep's zeroed stats never
  // pollute the averages; the point's status is kOk iff every rep was,
  // otherwise the first failure is surfaced. build_ms averages over the
  // reps that actually recorded one, preserving the -1 "not recorded"
  // sentinel instead of averaging it in as a sample.
  std::vector<core::MeasuredRun> averaged;
  averaged.reserve(jobs.size());
  // A rep that ran the engine still carries a real measurement even when
  // it is not ok: truncated reps hold censored lower bounds and
  // check-failed reps hold the full (rejected) run. build_failed /
  // exception reps carry nothing.
  const auto has_measurement = [](const core::MeasuredRun& rep) {
    return rep.status == core::RunStatus::kOk ||
           rep.status == core::RunStatus::kCheckFailed ||
           rep.status == core::RunStatus::kTruncated;
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::size_t base = i * static_cast<std::size_t>(reps);
    core::MeasuredRun acc;
    acc.scale = raw[base].scale;
    acc.n = raw[base].n;
    acc.status = core::RunStatus::kOk;
    acc.reps = reps;
    acc.reps_ok = 0;
    double build_sum = 0.0;
    int build_count = 0;
    for (int r = 0; r < reps; ++r) {
      const core::MeasuredRun& rep = raw[base + static_cast<std::size_t>(r)];
      if (rep.build_ms >= 0.0) {
        build_sum += rep.build_ms;
        ++build_count;
      }
      if (rep.ok()) {
        ++acc.reps_ok;
      } else if (acc.status == core::RunStatus::kOk) {
        acc.status = rep.status;
        acc.check_reason = rep.check_reason;
      }
    }
    // Statistics pool over the ok reps; with no ok rep at all, fall back
    // to the measured non-ok reps so e.g. a fully-truncated point keeps
    // its censored lower bounds (clearly flagged by the non-ok status)
    // instead of zeroing out. to_samples still ignores non-ok points.
    const bool use_ok = acc.reps_ok > 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    int contributors = 0;
    for (int r = 0; r < reps; ++r) {
      const core::MeasuredRun& rep = raw[base + static_cast<std::size_t>(r)];
      if (use_ok ? !rep.ok() : !has_measurement(rep)) continue;
      ++contributors;
      sum += rep.node_averaged;
      sum_sq += rep.node_averaged * rep.node_averaged;
      if (contributors == 1) {
        acc.n = rep.n;
        acc.na_min = rep.node_averaged;
        acc.na_max = rep.node_averaged;
      } else {
        acc.na_min = std::min(acc.na_min, rep.node_averaged);
        acc.na_max = std::max(acc.na_max, rep.node_averaged);
      }
      acc.worst_case = std::max(acc.worst_case, rep.worst_case);
      acc.term.merge(rep.term);
    }
    if (contributors > 0) {
      const double mean = sum / contributors;
      acc.node_averaged = mean;
      const double var = sum_sq / contributors - mean * mean;
      acc.na_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
      // Pooled percentiles are bucket upper edges; never report a
      // percentile beyond the observed maximum.
      acc.term.p50 = std::min(acc.term.p50, acc.worst_case);
      acc.term.p90 = std::min(acc.term.p90, acc.worst_case);
      acc.term.p99 = std::min(acc.term.p99, acc.worst_case);
    }
    acc.build_ms = build_count > 0 ? build_sum / build_count : -1.0;
    averaged.push_back(std::move(acc));
  }
  return averaged;
}

void ScenarioContext::report(const std::string& title,
                             const std::string& scale_name,
                             double predicted_lo, double predicted_hi,
                             std::vector<core::MeasuredRun> runs) {
  core::print_experiment(title, runs, scale_name, predicted_lo,
                         predicted_hi);
  record(title, scale_name, predicted_lo, predicted_hi, std::move(runs));
}

void ScenarioContext::record(const std::string& title,
                             const std::string& scale_name,
                             double predicted_lo, double predicted_hi,
                             std::vector<core::MeasuredRun> runs) {
  Series s;
  s.title = title;
  s.scale_name = scale_name;
  s.predicted_lo = predicted_lo;
  s.predicted_hi = predicted_hi;
  s.runs = std::move(runs);
  result_.series.push_back(std::move(s));
}

void ScenarioContext::metric(const std::string& key, double value) {
  result_.metrics[key] = value;
}

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> registry = {
      {"fig2_landscape", "E1: the completed landscape + measured witnesses",
       run_fig2_landscape},
      {"thm11_hier35",
       "E2: Theorem 11 — k-hierarchical 3.5-coloring ~ (log* n)^{1/2^{k-1}}",
       run_thm11_hier35},
      {"thm2_pi25",
       "E3: Theorems 2/3 — Pi^{2.5} node-average Theta(n^{alpha1})",
       run_thm2_pi25},
      {"thm4_pi35",
       "E4: Theorems 4/5 — Pi^{3.5} between (log* n)^{alpha1(x)} and "
       "(log* n)^{alpha1(x')}",
       run_thm4_pi35},
      {"thm1_density", "E5: Theorem 1 — density of the polynomial regime",
       run_thm1_density},
      {"thm6_density", "E6: Theorem 6 — density of the log* regime",
       run_thm6_density},
      {"lemma69_weightaug",
       "E7: Lemma 69 — weight-augmented 2.5-coloring Theta(n^{1/k})",
       run_lemma69_weightaug},
      {"cor60_gap", "E8: Corollary 60 — the omega(sqrt n)..o(n) gap",
       run_cor60_gap},
      {"thm7_decidability",
       "E9: Theorem 7 — the omega(1)..(log* n)^{o(1)} gap & decidability",
       run_thm7_decidability},
      {"lemma72_decomposition",
       "E10: Lemma 72 — rake & compress decompositions", run_lemma72_decomposition},
      {"lemma23_dfree", "E11: Lemmas 23/40/52 — weight-gadget efficiency",
       run_lemma23_dfree},
      {"linial_logstar",
       "E12: Linial / Corollary 17 — 3-coloring paths in Theta(log* n)",
       run_linial_logstar},
      {"fig2_randomized",
       "E13: randomized dichotomy — O(1) or n^{Omega(1)}",
       run_fig2_randomized},
      {"ablation", "E14: ablations of the design choices", run_ablation},
      {"engine_micro",
       "substrate micro-benchmarks: arena engine vs legacy baseline",
       run_engine_micro},
      {"family_sweep",
       "registry coverage: distributed decomposition across --families",
       run_family_sweep},
      {"solver_matrix",
       "algorithm-registry coverage: every --algos solver certified on "
       "every compatible --families instance",
       run_solver_matrix},
      {"problem_sweep",
       "problem-space sweep: sampled bw tables classified, solved "
       "through the registry, certified, agreement reported",
       run_problem_sweep},
      {"service_sweep",
       "lcld load generator: Zipf repeat-query mix through the service "
       "layer — cache-hit rate, warm p50/p99 latency, throughput",
       run_service_sweep},
  };
  return registry;
}

int cli_main(int argc, char** argv, const std::string& forced_scenario) {
  ScenarioOptions opts;
  bool list = false;
  bool list_algos = false;
  bool want_json = false;
  std::string json_path;
  bool want_binary = false;
  std::string binary_path;
  std::string run_name = forced_scenario;
  bool compare_mode = false;
  std::string compare_old;
  std::string compare_new;
  CompareOptions compare_opts;
  bool history_mode = false;
  std::vector<std::string> history_paths;
  HistoryOptions history_opts;
  bool export_mode = false;
  std::string export_in;
  std::string export_out;

  // Duplicate-flag detection: every flag except the deliberately
  // repeatable --algo-opt may appear at most once. Without this, the
  // silent last-one-wins made `--n 0.1 ... --n 1.0` typos unfindable.
  std::set<std::string> seen_flags;
  auto once = [&seen_flags](const std::string& flag) {
    if (!seen_flags.insert(flag).second) {
      std::fprintf(stderr, "lclbench: duplicate %s\n", flag.c_str());
      std::exit(2);
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lclbench: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_uint64 = [&](const char* flag) -> std::uint64_t {
      const std::string value = next_value(flag);
      try {
        // stoull would silently wrap a negative value to 2^64 - |v|.
        if (value.empty() || value[0] == '-') {
          throw std::invalid_argument(value);
        }
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "lclbench: %s expects an unsigned integer, got "
                     "'%s'\n",
                     flag, value.c_str());
        std::exit(2);
      }
    };
    auto parse_double = [&](const char* flag) {
      const std::string value = next_value(flag);
      try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        std::fprintf(stderr, "lclbench: %s expects a number, got '%s'\n",
                     flag, value.c_str());
        std::exit(2);
      }
    };
    auto parse_int = [&](const char* flag) {
      return static_cast<int>(parse_double(flag));
    };
    if (arg == "--list") {
      once("--list");
      list = true;
    } else if (arg == "--list-algos") {
      once("--list-algos");
      list_algos = true;
    } else if (arg == "--run") {
      once("--run");
      const std::string name = next_value("--run");
      if (forced_scenario.empty()) run_name = name;
    } else if (arg == "--n") {
      once("--n");
      opts.n_scale = parse_double("--n");
    } else if (arg == "--reps") {
      once("--reps");
      opts.reps = parse_int("--reps");
    } else if (arg == "--threads") {
      once("--threads");
      opts.threads = parse_int("--threads");
    } else if (arg == "--seed") {
      once("--seed");
      opts.seed = parse_uint64("--seed");
    } else if (arg == "--engine") {
      once("--engine");
      const std::string value = next_value("--engine");
      local::KernelMode mode;
      if (!local::parse_kernel_mode(value, mode)) {
        std::fprintf(stderr,
                     "lclbench: --engine expects scalar|simd|auto, got "
                     "'%s'\n",
                     value.c_str());
        std::exit(2);
      }
      opts.engine = value;
    } else if (arg == "--dispatch") {
      once("--dispatch");
      const std::string value = next_value("--dispatch");
      local::DispatchMode mode;
      if (!local::parse_dispatch_mode(value, mode)) {
        std::fprintf(stderr,
                     "lclbench: --dispatch expects pernode|batch|auto, got "
                     "'%s'\n",
                     value.c_str());
        std::exit(2);
      }
      opts.dispatch = value;
    } else if (arg == "--problems") {
      once("--problems");
      opts.problems = parse_int("--problems");
      if (opts.problems <= 0) {
        std::fprintf(stderr,
                     "lclbench: --problems expects a positive count\n");
        std::exit(2);
      }
    } else if (arg == "--problem-seed") {
      once("--problem-seed");
      opts.problem_seed = parse_uint64("--problem-seed");
    } else if (arg == "--families") {
      once("--families");
      const std::string value = next_value("--families");
      try {
        opts.families = graph::parse_family_list(value);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lclbench: %s (try one of:", e.what());
        for (const std::string& name : graph::family_names()) {
          std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, ")\n");
        std::exit(2);
      }
    } else if (arg == "--algos") {
      once("--algos");
      const std::string value = next_value("--algos");
      try {
        opts.algos = algo::parse_solver_list(value);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lclbench: %s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--algo-opt") {
      const std::string value = next_value("--algo-opt");
      try {
        (void)algo::split_option(value);  // syntactic check only here
      } catch (const std::exception& e) {
        std::fprintf(stderr, "lclbench: --algo-opt %s\n", e.what());
        std::exit(2);
      }
      // Semantic validation (key known, value parses and is in range)
      // happens below, once the --algos selection is resolved.
      opts.algo_opts.push_back(value);
    } else if (arg == "--json") {
      once("--json");
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg == "--binary") {
      once("--binary");
      want_binary = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') binary_path = argv[++i];
    } else if (arg == "--history") {
      once("--history");
      history_mode = true;
      history_paths.push_back(next_value("--history"));
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        history_paths.push_back(argv[++i]);
      }
    } else if (arg == "--trend-window") {
      once("--trend-window");
      history_opts.window = parse_int("--trend-window");
      if (history_opts.window < 2) {
        std::fprintf(stderr,
                     "lclbench: --trend-window expects a window >= 2\n");
        std::exit(2);
      }
    } else if (arg == "--export") {
      once("--export");
      export_mode = true;
      export_in = next_value("--export");
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lclbench: --export needs <in> <out>\n");
        std::exit(2);
      }
      export_out = argv[++i];
    } else if (arg == "--compare") {
      once("--compare");
      compare_mode = true;
      compare_old = next_value("--compare");
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "lclbench: --compare needs <old.json> <new.json>\n");
        std::exit(2);
      }
      compare_new = argv[++i];
    } else if (arg == "--tol-exponent") {
      once("--tol-exponent");
      compare_opts.tol_exponent = parse_double("--tol-exponent");
      history_opts.tol_exponent = compare_opts.tol_exponent;
    } else if (arg == "--tol-avg") {
      once("--tol-avg");
      compare_opts.tol_avg = parse_double("--tol-avg");
      history_opts.tol_avg = compare_opts.tol_avg;
    } else if (arg == "--tol-wall") {
      once("--tol-wall");
      compare_opts.tol_wall = parse_double("--tol-wall");
      history_opts.tol_wall = compare_opts.tol_wall;
    } else if (arg == "--allow-missing") {
      once("--allow-missing");
      compare_opts.allow_missing = true;
      history_opts.allow_missing = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "lclbench: unknown argument %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }

  if (compare_mode) {
    return compare_snapshots(compare_old, compare_new, compare_opts);
  }
  if (history_mode) {
    return history_snapshots(history_paths, history_opts);
  }
  if (export_mode) {
    return export_snapshot(export_in, export_out);
  }
  if (list) {
    for (const Scenario& s : all_scenarios()) {
      std::printf("  %-22s %s\n", s.name.c_str(), s.summary.c_str());
    }
    return 0;
  }
  if (list_algos) {
    print_algo_registry();
    return 0;
  }
  if (run_name.empty()) {
    print_usage();
    return 2;
  }

  std::vector<const Scenario*> to_run;
  for (const Scenario& s : all_scenarios()) {
    if (run_name == "all" || run_name == s.name) to_run.push_back(&s);
  }
  if (to_run.empty()) {
    std::fprintf(stderr,
                 "lclbench: unknown scenario '%s' (try --list)\n",
                 run_name.c_str());
    return 2;
  }

  // Resolve the family and solver selections once; every consumer
  // (scenarios, JSON snapshot) reads the same resolved lists.
  if (opts.families.empty()) {
    opts.families = graph::parse_family_list("all");
  }
  if (opts.algos.empty()) {
    opts.algos = algo::parse_solver_list("all");
  }
  // Validate every --algo-opt against the *selected* solvers now, so a
  // bad key or out-of-range value is a clean usage error here — never
  // an uncaught throw mid-scenario or on a worker thread. Each pair
  // must be accepted by every selected solver that declares its key,
  // which is exactly the set the algorithm-driven scenarios apply it to.
  for (const std::string& kv : opts.algo_opts) {
    try {
      bool known = false;
      for (const std::string& name : opts.algos) {
        const algo::SolverSpec& s = algo::solver(name);
        if (s.find_option(algo::split_option(kv).first) == nullptr) {
          continue;
        }
        known = true;
        algo::SolverConfig probe;
        algo::apply_option(s, probe, kv);
        probe.validate(s);
      }
      if (!known) {
        throw std::invalid_argument(
            "no selected solver has an option '" +
            algo::split_option(kv).first + "' (see --list-algos)");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lclbench: --algo-opt %s\n", e.what());
      return 2;
    }
  }

  // Kernel selection: install the process-wide default before any
  // scenario constructs an engine, and record the *resolved* path in
  // the snapshot ("auto" collapses to what actually ran — "scalar" in
  // LCL_FORCE_SCALAR builds, "simd" otherwise).
  {
    local::KernelMode mode = local::KernelMode::kAuto;
    (void)local::parse_kernel_mode(opts.engine, mode);  // validated above
    local::set_default_kernel_mode(mode);
    opts.engine = local::kernel_mode_name(local::resolve_kernel_mode(mode));
  }

  // Dispatch selection, same shape: install the process-wide default and
  // record the resolved contract ("auto" collapses to "batch").
  {
    local::DispatchMode mode = local::DispatchMode::kAuto;
    (void)local::parse_dispatch_mode(opts.dispatch, mode);  // validated above
    local::set_default_dispatch_mode(mode);
    opts.dispatch =
        local::dispatch_mode_name(local::resolve_dispatch_mode(mode));
  }

  core::BatchOptions pool_opts;
  pool_opts.threads = opts.threads;
  core::BatchRunner pool(pool_opts);
  opts.threads = pool.threads();

  std::vector<ScenarioReport> reports;
  const auto total_start = std::chrono::steady_clock::now();
  for (const Scenario* s : to_run) {
    ScenarioContext ctx(opts, pool);
    const auto start = std::chrono::steady_clock::now();
    try {
      s->run(ctx);
    } catch (const std::exception& e) {
      // A scenario-level failure (misconfiguration that survived the
      // eager checks, a builder edge case, ...) is a clean error exit,
      // not an abort-with-core.
      std::fprintf(stderr, "lclbench: scenario %s failed: %s\n",
                   s->name.c_str(), e.what());
      return 1;
    }
    ScenarioReport rep;
    rep.name = s->name;
    rep.wall_ms = wall_ms_since(start);
    rep.result = std::move(ctx.result());
    std::printf("[%s: %.0f ms]\n\n", s->name.c_str(), rep.wall_ms);
    reports.push_back(std::move(rep));
  }
  const double total_wall_ms = wall_ms_since(total_start);

  if (want_json || want_binary) {
    const std::string text = render_json(opts, reports, total_wall_ms);
    if (want_json) {
      if (json_path.empty()) json_path = "BENCH_" + run_name + ".json";
      write_json(json_path, text);
    }
    if (want_binary) {
      if (binary_path.empty()) {
        binary_path = "BENCH_" + run_name + ".lclb";
      }
      write_binary(binary_path, text);
    }
  }
  return 0;
}

}  // namespace lcl::bench
