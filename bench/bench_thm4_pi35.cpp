// E4 — Theorems 4 and 5: Pi^{3.5}_{Delta,d,k} has node-averaged
// complexity between Omega((log* n)^{alpha1(x)}) and
// O((log* n)^{alpha1(x')}) — the fitted exponent of node-average vs the
// virtual log* (Lambda) must land in (or near) that band.
#include <cstdio>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_one(int delta, int d, int k, std::int64_t lambda,
                          std::int64_t target_n, std::uint64_t seed) {
  const double xp = core::efficiency_x_prime(delta, d);
  const auto alphas = core::alpha_profile_logstar(xp, k);
  const auto ell = core::lower_bound_lengths(
      alphas, static_cast<double>(lambda), target_n);
  auto inst = graph::make_weighted_construction(ell, delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::SolverConfig cfg;
  cfg.set("k", k);
  cfg.set("d", d);
  // Decline-regime gammas (see bench_thm2_pi25).
  std::vector<std::int64_t> gammas;
  for (int i = 0; i + 1 < k; ++i) {
    gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  cfg.set("gammas", std::move(gammas));
  cfg.set("symmetry_pad", lambda);
  const auto run =
      algo::run_registered(algo::solver("pi35"), inst.tree, cfg);
  return core::measure_run_weight_adjusted(static_cast<double>(lambda),
                                           inst.tree, run.stats,
                                           run.verdict);
}

}  // namespace

namespace lcl::bench {

void run_thm4_pi35(ScenarioContext& ctx) {
  std::printf("== E4: Theorems 4/5 — Pi^{3.5}_{Delta,d,k} between "
              "(log* n)^{alpha1(x)} and (log* n)^{alpha1(x')} ==\n\n");
  struct Config {
    int delta, d, k;
  };
  const std::int64_t target_n = ctx.scaled(30000);
  for (const Config c :
       {Config{6, 3, 2}, Config{7, 4, 2}, Config{9, 5, 2},
        Config{6, 3, 3}}) {
    const double lo =
        core::alpha1_logstar(core::efficiency_x(c.delta, c.d), c.k);
    const double hi =
        core::alpha1_logstar(core::efficiency_x_prime(c.delta, c.d), c.k);
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t lambda : {64, 192, 576, 1728, 5184}) {
      core::BatchJob job;
      job.label = "pi35-L" + std::to_string(lambda);
      job.scale = static_cast<double>(lambda);
      job.seed = static_cast<std::uint64_t>(lambda + c.d);
      job.run = [c, lambda, target_n](std::uint64_t seed) {
        return run_one(c.delta, c.d, c.k, lambda, target_n, seed);
      };
      jobs.push_back(std::move(job));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Pi3.5 Delta=%d d=%d k=%d: node-avg ~ Lambda^c",
                  c.delta, c.d, c.k);
    ctx.report(title, "Lambda", lo, hi, std::move(runs));
  }
}

}  // namespace lcl::bench
