// E4 — Theorems 4 and 5: Pi^{3.5}_{Delta,d,k} has node-averaged
// complexity between Omega((log* n)^{alpha1(x)}) and
// O((log* n)^{alpha1(x')}) — the fitted exponent of node-average vs the
// virtual log* (Lambda) must land in (or near) that band.
#include <cstdio>

#include "algo/pi35.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"

namespace {

using namespace lcl;

/// Node-average with the Connect/Decline weight nodes' contribution
/// removed — exactly the accounting of Theorem 2's proof ("terminate in
/// O(log n) rounds and can therefore be ignored"); at finite n that
/// logarithmic floor otherwise swamps small exponents.
double adjusted_average(const graph::Tree& tree,
                        const local::RunStats& stats) {
  std::int64_t total = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const bool weight =
        tree.input(v) == static_cast<int>(graph::WeightInput::kWeight);
    const bool copy =
        stats.output[static_cast<std::size_t>(v)].primary ==
        static_cast<int>(problems::WeightOut::kCopy);
    if (weight && !copy) continue;
    total += stats.termination_round[static_cast<std::size_t>(v)];
  }
  return static_cast<double>(total) / static_cast<double>(tree.size());
}

core::MeasuredRun run_one(int delta, int d, int k, std::int64_t lambda,
                          std::int64_t target_n, std::uint64_t seed) {
  const double xp = core::efficiency_x_prime(delta, d);
  const auto alphas = core::alpha_profile_logstar(xp, k);
  const auto ell = core::lower_bound_lengths(
      alphas, static_cast<double>(lambda), target_n);
  auto inst = graph::make_weighted_construction(ell, delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::Pi35Options o;
  o.k = k;
  o.d = d;
  // Decline-regime gammas (see bench_thm2_pi25).
  for (int i = 0; i + 1 < k; ++i) {
    o.gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  o.symmetry_pad = lambda;
  const auto stats = algo::run_pi35(inst.tree, o);
  const auto check = problems::check_weighted(
      inst.tree, k, d, problems::Variant::kThreeHalf, stats.output);

  core::MeasuredRun r;
  r.scale = static_cast<double>(lambda);
  r.node_averaged = adjusted_average(inst.tree, stats);
  r.worst_case = stats.worst_case;
  r.n = inst.tree.size();
  r.valid = check.ok;
  r.check_reason = check.reason;
  return r;
}

}  // namespace

int main() {
  std::printf("== E4: Theorems 4/5 — Pi^{3.5}_{Delta,d,k} between "
              "(log* n)^{alpha1(x)} and (log* n)^{alpha1(x')} ==\n\n");
  struct Config {
    int delta, d, k;
  };
  for (const Config c :
       {Config{6, 3, 2}, Config{7, 4, 2}, Config{9, 5, 2},
        Config{6, 3, 3}}) {
    const double lo =
        core::alpha1_logstar(core::efficiency_x(c.delta, c.d), c.k);
    const double hi =
        core::alpha1_logstar(core::efficiency_x_prime(c.delta, c.d), c.k);
    std::vector<core::MeasuredRun> runs;
    for (std::int64_t lambda : {64, 192, 576, 1728, 5184}) {
      runs.push_back(run_one(c.delta, c.d, c.k, lambda, 30000,
                             static_cast<std::uint64_t>(lambda + c.d)));
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Pi3.5 Delta=%d d=%d k=%d: node-avg ~ Lambda^c",
                  c.delta, c.d, c.k);
    core::print_experiment(title, runs, "Lambda", lo, hi);
  }
  return 0;
}
