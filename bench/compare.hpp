// Snapshot regression gate: diffs two BENCH_*.json files.
//
// `lclbench --compare old.json new.json` loads both snapshots (schema
// lclbench-v2 or -v3), matches scenarios by name and series by title,
// and reports
//   - schema regressions (new schema older than old, or unknown),
//   - validity regressions (a series with more non-ok runs than before,
//     including truncated / build_failed / exception statuses),
//   - coverage regressions (a series recording fewer runs than before),
//   - missing scenarios or series,
//   - fitted-exponent drift beyond --tol-exponent,
//   - node-averaged drift at matching sweep scales (--tol-avg, off by
//     default: values at different --n are not comparable),
//   - wall-time ratios (gated only when --tol-wall is set; always
//     reported).
// Exit status: 0 = no regression, 1 = regressions found, 2 = a snapshot
// could not be read or parsed. CI runs this against the committed
// BENCH_all.json so the perf/validity trajectory is machine-checked.
#pragma once

#include <string>

namespace lcl::bench {

struct CompareOptions {
  /// Absolute drift allowed in a series' fitted exponent.
  double tol_exponent = 0.15;
  /// Relative drift allowed in node_averaged at matching scales;
  /// 0 disables the check (snapshots at different --n are incomparable).
  double tol_avg = 0.0;
  /// Max allowed new/old wall-time ratio per scenario; 0 disables the
  /// gate (ratios are still reported).
  double tol_wall = 0.0;
  /// Downgrade missing scenarios/series from regression to warning
  /// (useful when the new snapshot deliberately ran a subset).
  bool allow_missing = false;
};

/// Diffs two snapshots, printing a report to stdout. Returns the process
/// exit status documented above.
[[nodiscard]] int compare_snapshots(const std::string& old_path,
                                    const std::string& new_path,
                                    const CompareOptions& opts);

}  // namespace lcl::bench
