// Snapshot regression gates: pairwise diff and long-horizon history.
//
// `lclbench --compare old new` loads two snapshots (schema lclbench-v2
// or -v3, JSON or binary .lclb — formats mix freely), matches scenarios
// by name and series by title, and reports
//   - schema regressions (new schema older than old, or unknown),
//   - validity regressions (a series with more non-ok runs than before,
//     including truncated / build_failed / exception statuses),
//   - coverage regressions (a series recording fewer runs than before),
//   - missing scenarios or series,
//   - fitted-exponent drift beyond --tol-exponent,
//   - node-averaged drift at matching sweep scales (--tol-avg, off by
//     default: values at different --n are not comparable),
//   - wall-time ratios (gated only when --tol-wall is set; always
//     reported).
// Exit status: 0 = no regression, 1 = regressions found, 2 = a snapshot
// could not be read or parsed. CI runs this against the committed
// BENCH_all.json so the perf/validity trajectory is machine-checked.
// `lclbench --history a.lclb b.lclb c.json ...` generalizes the gate
// from pairwise drift to trajectories: N snapshots are ordered by their
// recorded timestamp and every per-series metric becomes a time series.
// On top of the latest-vs-previous pairwise checks (coverage loss,
// validity, schema downgrades) it flags *sustained* trends — a metric
// that moved monotonically across the last --trend-window snapshots by
// more than the tolerance in total, even when every single step stayed
// under the pairwise gate. That is exactly the regression class a
// pairwise diff structurally cannot see (death by K small cuts).
#pragma once

#include <string>
#include <vector>

namespace lcl::bench {

struct CompareOptions {
  /// Absolute drift allowed in a series' fitted exponent.
  double tol_exponent = 0.15;
  /// Relative drift allowed in node_averaged at matching scales;
  /// 0 disables the check (snapshots at different --n are incomparable).
  double tol_avg = 0.0;
  /// Max allowed new/old wall-time ratio per scenario; 0 disables the
  /// gate (ratios are still reported).
  double tol_wall = 0.0;
  /// Downgrade missing scenarios/series from regression to warning
  /// (useful when the new snapshot deliberately ran a subset).
  bool allow_missing = false;
};

/// Diffs two snapshots, printing a report to stdout. Returns the process
/// exit status documented above.
[[nodiscard]] int compare_snapshots(const std::string& old_path,
                                    const std::string& new_path,
                                    const CompareOptions& opts);

struct HistoryOptions {
  /// Consecutive snapshots a sustained trend is measured over
  /// (--trend-window); clamped to the history length. Trend checks need
  /// at least 3 snapshots — with 2 the history degenerates to the
  /// pairwise checks.
  int window = 3;
  /// Total monotone exponent drift across the window that flags a trend
  /// regression (--tol-exponent).
  double tol_exponent = 0.15;
  /// Total monotone relative node-averaged drift at matching scales;
  /// 0 disables (--tol-avg; only sound when the history ran one --n).
  double tol_avg = 0.0;
  /// Max allowed monotone last/first wall-time ratio per scenario
  /// across the window; 0 disables the gate (--tol-wall; trajectories
  /// are always reported).
  double tol_wall = 0.0;
  /// Downgrade coverage loss (scenario/series present in the previous
  /// snapshot but missing from the latest) to a warning.
  bool allow_missing = false;
};

/// Loads N >= 2 snapshots (JSON or .lclb, mixed freely), orders them by
/// recorded timestamp (stable, so untimestamped files keep their given
/// order), prints per-scenario wall and per-series exponent
/// trajectories, and gates: latest-vs-previous coverage/validity/schema
/// plus sustained monotone trends across the last `window` snapshots.
/// Exit status: 0 = clean, 1 = regressions found, 2 = a snapshot could
/// not be read or parsed (or fewer than 2 were given).
[[nodiscard]] int history_snapshots(const std::vector<std::string>& paths,
                                    const HistoryOptions& opts);

}  // namespace lcl::bench
