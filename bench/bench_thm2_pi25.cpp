// E3 — Theorems 2 and 3: the weighted problem Pi^{2.5}_{Delta,d,k} has
// node-averaged complexity Theta(n^{alpha1}) with
// alpha1 = 1/sum_{j<k}(2-x)^j, x = log(Delta-d-1)/log(Delta-1).
//
// Instances are the Definition-25 weighted construction (Figure 4);
// the solver is A_poly (Section 7.1); validity is certified by the
// Definition-22 checker; the measured node-average is fitted against n.
#include <cstdio>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

core::MeasuredRun run_one(int delta, int d, int k, std::int64_t target_n,
                          std::uint64_t seed) {
  const double x = core::efficiency_x(delta, d);
  const auto alphas = core::alpha_profile_poly(x, k);
  const auto ell = core::lower_bound_lengths(
      alphas, static_cast<double>(target_n), target_n);
  auto inst = graph::make_weighted_construction(ell, delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  algo::SolverConfig cfg;
  cfg.set("k", k);
  cfg.set("d", d);
  // gamma_i = skeleton length ell'_i: level-i paths sit exactly at the
  // Decline threshold — the regime of the Theorem-3 lower bound, where
  // the weight waits on the level-k coloring.
  std::vector<std::int64_t> gammas;
  for (int i = 0; i + 1 < k; ++i) {
    gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  cfg.set("gammas", std::move(gammas));
  const auto run =
      algo::run_registered(algo::solver("apoly"), inst.tree, cfg);
  return core::measure_run_weight_adjusted(
      static_cast<double>(inst.tree.size()), inst.tree, run.stats,
      run.verdict);
}

}  // namespace

namespace lcl::bench {

void run_thm2_pi25(ScenarioContext& ctx) {
  std::printf("== E3: Theorems 2/3 — Pi^{2.5}_{Delta,d,k} is "
              "Theta(n^{alpha1}) ==\n\n");
  struct Config {
    int delta, d, k;
  };
  for (const Config c : {Config{5, 2, 2}, Config{9, 4, 2}, Config{9, 6, 2},
                         Config{5, 2, 3}}) {
    const double x = core::efficiency_x(c.delta, c.d);
    const double a1 = core::alpha1_poly(x, c.k);
    // k = 3 exponents are small (alpha1 ~ 0.21), so the sweep must reach
    // further before the power law clears the additive wave constants.
    const std::vector<std::int64_t> sizes =
        c.k >= 3
            ? std::vector<std::int64_t>{96000, 288000, 864000, 2592000}
            : std::vector<std::int64_t>{24000, 72000, 216000, 648000};
    std::vector<core::BatchJob> jobs;
    for (const std::int64_t base : sizes) {
      const std::int64_t n = ctx.scaled(base);
      core::BatchJob job;
      job.label = "pi25-n" + std::to_string(n);
      job.scale = static_cast<double>(n);
      job.seed = static_cast<std::uint64_t>(n + c.delta);
      job.run = [c, n](std::uint64_t seed) {
        return run_one(c.delta, c.d, c.k, n, seed);
      };
      jobs.push_back(std::move(job));
    }
    auto runs = ctx.run_sweep(std::move(jobs));
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Pi2.5 Delta=%d d=%d k=%d (x=%.3f): node-avg ~ "
                  "n^{alpha1}",
                  c.delta, c.d, c.k, x);
    ctx.report(title, "n", a1, a1, std::move(runs));
  }
}

}  // namespace lcl::bench
