// Substrate micro-benchmarks (google-benchmark): engine round
// throughput, instance construction, decomposition, and the full
// solver pipelines at fixed sizes. These guard the "simulation cost =
// O(sum of termination rounds)" property the experiment benches rely on.
#include <benchmark/benchmark.h>

#include "algo/apoly.hpp"
#include "algo/generic_hier.hpp"
#include "core/exponents.hpp"
#include "core/experiment.hpp"
#include "decomp/rake_compress.hpp"
#include "graph/builders.hpp"
#include "problems/levels.hpp"

namespace {

using namespace lcl;

void BM_EngineWavePath(benchmark::State& state) {
  const graph::NodeId n = static_cast<graph::NodeId>(state.range(0));
  graph::Tree t = graph::make_path(n);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 1);
  for (auto _ : state) {
    algo::GenericOptions o;
    o.variant = problems::Variant::kTwoHalf;
    o.k = 1;
    const auto stats = algo::run_generic(t, o);
    benchmark::DoNotOptimize(stats.total_rounds);
    state.counters["node_rounds"] =
        static_cast<double>(stats.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineWavePath)->Arg(1 << 12)->Arg(1 << 14);

void BM_LinialPath(benchmark::State& state) {
  const graph::NodeId n = static_cast<graph::NodeId>(state.range(0));
  graph::Tree t = graph::make_path(n);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 2);
  for (auto _ : state) {
    algo::GenericOptions o;
    o.variant = problems::Variant::kThreeHalf;
    o.k = 1;
    const auto stats = algo::run_generic(t, o);
    benchmark::DoNotOptimize(stats.worst_case);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinialPath)->Arg(1 << 14)->Arg(1 << 17);

void BM_Levels(benchmark::State& state) {
  const graph::Tree t = graph::make_random_tree(
      static_cast<graph::NodeId>(state.range(0)), 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problems::compute_levels(t, 3));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_Levels)->Arg(1 << 14)->Arg(1 << 17);

void BM_RakeCompress(benchmark::State& state) {
  const graph::Tree t = graph::make_random_tree(
      static_cast<graph::NodeId>(state.range(0)), 4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::rake_compress(t, 1, 4, true));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_RakeCompress)->Arg(1 << 14)->Arg(1 << 17);

void BM_WeightedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    auto inst = graph::make_weighted_construction({40, 400}, 5);
    benchmark::DoNotOptimize(inst.tree.size());
  }
}
BENCHMARK(BM_WeightedConstruction);

void BM_ApolyEndToEnd(benchmark::State& state) {
  const double x = core::efficiency_x(5, 2);
  const auto alphas = core::alpha_profile_poly(x, 2);
  const auto ell = core::lower_bound_lengths(alphas, 20000.0, 20000);
  auto inst = graph::make_weighted_construction(ell, 5);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 5);
  for (auto _ : state) {
    algo::ApolyOptions o;
    o.k = 2;
    o.d = 2;
    o.gammas = core::gammas_from_profile(
        alphas, static_cast<double>(inst.tree.size()));
    const auto stats = algo::run_apoly(inst.tree, o);
    benchmark::DoNotOptimize(stats.node_averaged);
  }
  state.SetItemsProcessed(state.iterations() * inst.tree.size());
}
BENCHMARK(BM_ApolyEndToEnd);

}  // namespace

BENCHMARK_MAIN();
