// Substrate micro-benchmarks: arena-engine round throughput against the
// frozen pre-refactor baseline (legacy_engine.hpp), the SIMD-vs-scalar
// kernel and whole-run series, the warm-workspace (allocation-free)
// steady state, plus the batched multi-thread sweep speedup. These
// guard the "simulation cost = O(sum of termination rounds)" property
// the experiment scenarios rely on, and keep the engine's perf
// trajectory visible in BENCH_*.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "algo/decomp_program.hpp"
#include "algo/level_program.hpp"
#include "algo/randomized.hpp"
#include "core/batch.hpp"
#include "graph/builders.hpp"
#include "legacy_engine.hpp"
#include "local/dispatch.hpp"
#include "local/engine.hpp"
#include "local/simd.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

// The micro workload, implemented identically against both engines: a
// token wave down a path. Node 0 emits at round 1 and terminates; node i
// forwards one hop per round and terminates when the token arrives, so
// sum_v T_v = Theta(n^2) engine-visible node-rounds with tiny registers —
// the engine's bookkeeping dominates, which is exactly what we measure.

class ArenaWave final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const local::RegView left = ctx.peek(0);
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(0);
    }
  }
};

class LegacyWave final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const bench::legacy::Register& left = ctx.peek(0);
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(0);
    }
  }
};

// A staggered-termination workload: node v terminates at round
// (v mod 64) + 1, so the alive set shrinks by n/64 nodes per round —
// stresses alive-list compaction rather than register traffic.

class ArenaStagger final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.round() == (ctx.node() % 64) + 1) ctx.terminate(0);
  }
};

class LegacyStagger final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override {
    if (ctx.round() == (ctx.node() % 64) + 1) ctx.terminate(0);
  }
};

// A setup-dominated workload: every node terminates in round 1, so
// sum_v T_v = n and one "run" is almost entirely per-run engine setup.
// This is the micro that quantifies snapshot elimination: the arena
// engine now borrows the Tree's native CSR (zero adjacency work per run)
// where it previously rebuilt a flat offset+neighbor copy every run.

class ArenaFlash final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override { ctx.terminate(0); }
};

class LegacyFlash final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override { ctx.terminate(0); }
};

// A chatty workload mirroring the real wave programs (generic_hier's
// 6-word wave registers, decomp_program's per-round republish): every
// alive node republishes a 6-word register every round and terminates
// after 64 rounds. Register traffic dominates: the legacy engine pays a
// vector assignment on publish plus a vector copy at the flip, the arena
// engine one 6-word write plus a parity toggle.

class ArenaChatter final : public local::Program {
 public:
  void on_init(local::NodeCtx& ctx) override {
    ctx.publish({0, 0, 0, 0, 0, 0});
  }
  void on_round(local::NodeCtx& ctx) override {
    const local::RegView mine = ctx.own();
    ctx.publish({mine[0] + 1, mine[1], mine[2], mine[3], mine[4],
                 mine[5]});
    if (ctx.round() == 64) ctx.terminate(0);
  }
};

class LegacyChatter final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx& ctx) override {
    ctx.publish({0, 0, 0, 0, 0, 0});
  }
  void on_round(bench::legacy::NodeCtx& ctx) override {
    const bench::legacy::Register& mine = ctx.peek_self();
    ctx.publish({mine[0] + 1, mine[1], mine[2], mine[3], mine[4],
                 mine[5]});
    if (ctx.round() == 64) ctx.terminate(0);
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Node-rounds per second of `run_once` (which returns sum_v T_v per
/// call), timed over enough iterations to dominate clock noise.
template <typename F>
double throughput(F run_once) {
  // Warm-up also primes allocator caches for both engines alike.
  std::int64_t node_rounds = run_once();
  const auto start = std::chrono::steady_clock::now();
  std::int64_t total = 0;
  int iters = 0;
  do {
    total += run_once();
    ++iters;
  } while (seconds_since(start) < 0.5 && iters < 50);
  (void)node_rounds;
  return static_cast<double>(total) / seconds_since(start);
}

}  // namespace

namespace lcl::bench {

void run_engine_micro(ScenarioContext& ctx) {
  std::printf("== substrate micro-benchmarks: arena engine vs legacy "
              "baseline ==\n\n");

  const auto wave_n = static_cast<graph::NodeId>(ctx.scaled(4096));
  const auto stagger_n = static_cast<graph::NodeId>(ctx.scaled(1 << 16));
  const graph::Tree wave_tree = graph::make_path(wave_n);
  const graph::Tree stagger_tree = graph::make_path(stagger_n);

  const double arena_wave = throughput([&] {
    ArenaWave p;
    local::Engine e(wave_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_wave = throughput([&] {
    LegacyWave p;
    legacy::Engine e(wave_tree);
    return e.run(p, wave_n + 2).total_rounds;
  });
  const double arena_stagger = throughput([&] {
    ArenaStagger p;
    local::Engine e(stagger_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_stagger = throughput([&] {
    LegacyStagger p;
    legacy::Engine e(stagger_tree);
    return e.run(p, 65).total_rounds;
  });
  const auto chatter_n = static_cast<graph::NodeId>(ctx.scaled(1 << 14));
  const graph::Tree chatter_tree = graph::make_path(chatter_n);
  const double arena_chatter = throughput([&] {
    ArenaChatter p;
    local::Engine e(chatter_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_chatter = throughput([&] {
    LegacyChatter p;
    legacy::Engine e(chatter_tree);
    return e.run(p, 65).total_rounds;
  });

  std::printf("  %-28s %14s %14s %8s\n", "workload", "arena Mnr/s",
              "legacy Mnr/s", "speedup");
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("wave path n=" + std::to_string(wave_n)).c_str(),
              arena_wave / 1e6, legacy_wave / 1e6,
              arena_wave / legacy_wave);
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("stagger n=" + std::to_string(stagger_n)).c_str(),
              arena_stagger / 1e6, legacy_stagger / 1e6,
              arena_stagger / legacy_stagger);
  ctx.metric("arena_wave_node_rounds_per_s", arena_wave);
  ctx.metric("legacy_wave_node_rounds_per_s", legacy_wave);
  ctx.metric("wave_speedup", arena_wave / legacy_wave);
  ctx.metric("arena_stagger_node_rounds_per_s", arena_stagger);
  ctx.metric("legacy_stagger_node_rounds_per_s", legacy_stagger);
  ctx.metric("stagger_speedup", arena_stagger / legacy_stagger);
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("chatter n=" + std::to_string(chatter_n)).c_str(),
              arena_chatter / 1e6, legacy_chatter / 1e6,
              arena_chatter / legacy_chatter);
  ctx.metric("arena_chatter_node_rounds_per_s", arena_chatter);
  ctx.metric("legacy_chatter_node_rounds_per_s", legacy_chatter);
  ctx.metric("chatter_speedup", arena_chatter / legacy_chatter);

  const auto flash_n = static_cast<graph::NodeId>(ctx.scaled(1 << 15));
  const graph::Tree flash_tree = graph::make_path(flash_n);
  const double arena_flash = throughput([&] {
    ArenaFlash p;
    local::Engine e(flash_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_flash = throughput([&] {
    LegacyFlash p;
    legacy::Engine e(flash_tree);
    return e.run(p, 2).total_rounds;
  });
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("flash (setup) n=" + std::to_string(flash_n)).c_str(),
              arena_flash / 1e6, legacy_flash / 1e6,
              arena_flash / legacy_flash);
  ctx.metric("arena_flash_node_rounds_per_s", arena_flash);
  ctx.metric("legacy_flash_node_rounds_per_s", legacy_flash);
  ctx.metric("flash_speedup", arena_flash / legacy_flash);

  // Warm-workspace flash: same engine + one reusable workspace +
  // recycled stats across reps (the BatchRunner steady state) vs the
  // cold per-run workspace the arena_flash metric above pays. The
  // allocs/run counter is the satellite's proof that reps after the
  // first perform zero plane allocations.
  local::Engine warm_engine(flash_tree);
  local::Engine::Workspace warm_ws;
  local::RunStats warm_stats;
  const double warm_flash = throughput([&] {
    ArenaFlash p;
    warm_engine.run_into(p, warm_ws, warm_stats);
    return warm_stats.total_rounds;
  });
  const std::int64_t allocs_before = warm_ws.alloc_events();
  for (int i = 0; i < 10; ++i) {
    ArenaFlash p;
    warm_engine.run_into(p, warm_ws, warm_stats);
  }
  const double warm_allocs_per_run =
      static_cast<double>(warm_ws.alloc_events() - allocs_before) / 10.0;
  std::printf("  %-28s %14.2f %14s %7.2fx  (%.1f allocs/run)\n",
              "flash, warm workspace", warm_flash / 1e6, "",
              warm_flash / arena_flash, warm_allocs_per_run);
  ctx.metric("warm_flash_node_rounds_per_s", warm_flash);
  ctx.metric("warm_over_cold_flash", warm_flash / arena_flash);
  ctx.metric("warm_allocs_per_run", warm_allocs_per_run);

  const double overall = std::pow((arena_wave / legacy_wave) *
                                      (arena_stagger / legacy_stagger) *
                                      (arena_chatter / legacy_chatter) *
                                      (arena_flash / legacy_flash),
                                  0.25);
  std::printf("  %-28s %14s %14s %7.2fx\n", "geometric mean", "", "",
              overall);
  ctx.metric("overall_speedup", overall);

  // --- SIMD-vs-scalar series -------------------------------------------
  // (1) Whole-run A/B: the same workloads under an explicitly scalar
  // engine. Virtual program callbacks dominate whole runs, so these
  // ratios understate the kernels; they pin "simd never loses".
  std::printf("\n  %-28s %14s %14s %8s\n", "simd vs scalar", "simd Mnr/s",
              "scalar Mnr/s", "ratio");
  const auto engine_ab = [&](const char* key, double simd_rate,
                             double scalar_rate) {
    std::printf("  %-28s %14.2f %14.2f %7.2fx\n", key, simd_rate / 1e6,
                scalar_rate / 1e6, simd_rate / scalar_rate);
    ctx.metric(std::string("engine_") + key + "_simd_vs_scalar",
               simd_rate / scalar_rate);
  };
  const double scalar_stagger = throughput([&] {
    ArenaStagger p;
    local::Engine e(stagger_tree, local::KernelMode::kScalar);
    return e.run(p).total_rounds;
  });
  const double scalar_chatter = throughput([&] {
    ArenaChatter p;
    local::Engine e(chatter_tree, local::KernelMode::kScalar);
    return e.run(p).total_rounds;
  });
  const double scalar_flash = throughput([&] {
    ArenaFlash p;
    local::Engine e(flash_tree, local::KernelMode::kScalar);
    return e.run(p).total_rounds;
  });
  engine_ab("stagger", arena_stagger, scalar_stagger);
  engine_ab("chatter", arena_chatter, scalar_chatter);
  engine_ab("flash", arena_flash, scalar_flash);

  // (2) Kernel-level A/B at full scale: the three SoA hot-path passes
  // in isolation, wide kernels vs the de-vectorized scalar reference
  // (local/simd.hpp). This is the honest measure of the data-parallel
  // win — and the series the >=2x target gates on. In LCL_FORCE_SCALAR
  // builds both sides run the reference kernels and the ratios sit at
  // ~1.
  {
    const auto flip_n = static_cast<std::size_t>(ctx.scaled(4 << 20));
    const std::size_t flip_padded =
        local::AlignedPlane<std::uint8_t>::padded(flip_n);
    local::AlignedPlane<std::uint8_t> cur;
    local::AlignedPlane<std::uint8_t> pub;
    cur.assign(flip_n, 1);
    pub.assign(flip_n, 1);
    const double flip_simd = throughput([&] {
      local::flip_commit_simd(cur.data(), pub.data(), flip_padded);
      return static_cast<std::int64_t>(flip_n);
    });
    const double flip_scalar = throughput([&] {
      local::flip_commit_scalar(cur.data(), pub.data(), flip_padded);
      return static_cast<std::int64_t>(flip_n);
    });

    // Reduce and compact run over cache-resident extents on purpose:
    // the engine reduces the T_v lane (and rewrites the alive list) it
    // just touched during the run, so the lane is warm. A DRAM-sized
    // extent would measure memory bandwidth, not the kernels.
    const auto reduce_n = static_cast<std::size_t>(ctx.scaled(128 << 10));
    local::AlignedPlane<std::int64_t> tv;
    tv.assign(reduce_n, 0);
    for (std::size_t i = 0; i < reduce_n; ++i) {
      tv.data()[i] = static_cast<std::int64_t>((i * 2654435761U) % 4096);
    }
    const double reduce_simd = throughput([&] {
      const local::TvReduction r =
          local::reduce_tv_simd(tv.data(), reduce_n);
      return static_cast<std::int64_t>(reduce_n) + (r.sum & 1);
    });
    const double reduce_scalar = throughput([&] {
      const local::TvReduction r =
          local::reduce_tv_scalar(tv.data(), reduce_n);
      return static_cast<std::int64_t>(reduce_n) + (r.sum & 1);
    });

    // Compaction in its steady state: a fully-surviving alive list (the
    // dominant round shape — most rounds touch no terminated block, and
    // the blocked kernel's whole win is skipping those stores).
    const auto compact_n = static_cast<std::size_t>(ctx.scaled(256 << 10));
    std::vector<graph::NodeId> alive(compact_n);
    for (std::size_t i = 0; i < compact_n; ++i) {
      alive[i] = static_cast<graph::NodeId>(i);
    }
    local::AlignedPlane<std::uint8_t> term;
    term.assign(compact_n, 0);
    const double compact_simd = throughput([&] {
      return static_cast<std::int64_t>(local::compact_alive_simd(
          alive.data(), compact_n, term.data()));
    });
    const double compact_scalar = throughput([&] {
      return static_cast<std::int64_t>(local::compact_alive_scalar(
          alive.data(), compact_n, term.data()));
    });

    const auto kernel_ab = [&](const char* key, const char* unit,
                               double simd_rate, double scalar_rate) {
      std::printf("  kernel %-21s %11.1f %s %11.1f %s %6.2fx\n", key,
                  simd_rate / 1e6, unit, scalar_rate / 1e6, unit,
                  simd_rate / scalar_rate);
      ctx.metric(std::string("kernel_") + key + "_simd_per_s", simd_rate);
      ctx.metric(std::string("kernel_") + key + "_scalar_per_s",
                 scalar_rate);
      ctx.metric(std::string("kernel_") + key + "_speedup",
                 simd_rate / scalar_rate);
    };
    kernel_ab("flip", "MB/s", flip_simd, flip_scalar);
    kernel_ab("reduce", "MW/s", reduce_simd, reduce_scalar);
    kernel_ab("compact", "Mi/s", compact_simd, compact_scalar);
  }

  // --- Dispatch A/B: batch step kernels vs per-node virtual hooks ------
  // The registry solvers ported to span-level batch kernels, whole runs
  // at full scale. Both sides execute the same program source — only the
  // Program↔Engine contract differs (DispatchMode::kBatch walks the
  // alive span through on_round_batch; kPerNode makes one virtual call
  // per alive node per round) — and results are bit-identical (pinned by
  // the three-way differential in tests/test_differential.cpp), so the
  // ratio isolates dispatch overhead: virtual-call fan-out, port
  // resolution through NodeCtx, and per-node recomputation the batch
  // kernels hoist. The >=1.5x whole-run geomean target gates on this
  // series.
  {
    std::printf("\n  %-28s %14s %14s %8s\n", "dispatch a/b", "batch Mnr/s",
                "pernode Mnr/s", "speedup");
    double geomean = 1.0;
    int ab_count = 0;
    const auto dispatch_ab = [&](const char* key, auto make_program,
                                 const graph::Tree& tree) {
      const double batch_rate = throughput([&] {
        auto p = make_program();
        local::Engine e(tree, local::KernelMode::kAuto,
                        local::DispatchMode::kBatch);
        return e.run(*p).total_rounds;
      });
      const double pernode_rate = throughput([&] {
        auto p = make_program();
        local::Engine e(tree, local::KernelMode::kAuto,
                        local::DispatchMode::kPerNode);
        return e.run(*p).total_rounds;
      });
      const double speedup = batch_rate / pernode_rate;
      std::printf("  %-28s %14.2f %14.2f %7.2fx\n", key, batch_rate / 1e6,
                  pernode_rate / 1e6, speedup);
      ctx.metric(std::string("dispatch_") + key + "_batch_per_s",
                 batch_rate);
      ctx.metric(std::string("dispatch_") + key + "_pernode_per_s",
                 pernode_rate);
      ctx.metric(std::string("dispatch_") + key + "_speedup", speedup);
      geomean *= speedup;
      ++ab_count;
    };

    const auto level_n = static_cast<graph::NodeId>(ctx.scaled(1 << 16));
    const graph::Tree level_tree = graph::make_random_tree(level_n, 4, 7);
    dispatch_ab(
        "level_peeling",
        [&] { return std::make_unique<algo::LevelProgram>(level_tree, 24); },
        level_tree);

    const auto color_n = static_cast<graph::NodeId>(ctx.scaled(1 << 16));
    const graph::Tree color_tree = graph::make_random_tree(color_n, 4, 11);
    const int colors = color_tree.max_degree() + 1;
    dispatch_ab(
        "random_coloring",
        [&] {
          return std::make_unique<algo::RandomColoringProgram>(color_tree,
                                                               colors, 3);
        },
        color_tree);

    const auto decomp_n = static_cast<graph::NodeId>(ctx.scaled(1 << 14));
    const graph::Tree decomp_tree =
        graph::make_random_tree(decomp_n, 4, 13);
    dispatch_ab(
        "rake_compress",
        [&] {
          return std::make_unique<algo::DecompositionProgram>(decomp_tree,
                                                              2, 8);
        },
        decomp_tree);

    const double dispatch_geomean =
        std::pow(geomean, 1.0 / static_cast<double>(ab_count));
    std::printf("  %-28s %14s %14s %7.2fx\n", "dispatch geomean", "", "",
                dispatch_geomean);
    ctx.metric("dispatch_geomean_speedup", dispatch_geomean);
  }

  // Instance-construction throughput through the per-thread TreeBuilder
  // arena (CSR emission + validation; no vector-of-vectors adjacency).
  // Absolute numbers tracked across PRs for the allocation trajectory.
  const auto build_n = static_cast<graph::NodeId>(ctx.scaled(1 << 14));
  const double build_path = throughput([&] {
    const graph::Tree t = graph::make_path(build_n);
    return static_cast<std::int64_t>(t.size());
  });
  const double build_random = throughput([&] {
    const graph::Tree t = graph::make_random_tree(build_n, 4, 42);
    return static_cast<std::int64_t>(t.size());
  });
  std::printf("\n  instance builds (arena), n=%d: path %.2f Mnodes/s, "
              "random %.2f Mnodes/s\n",
              build_n, build_path / 1e6, build_random / 1e6);
  ctx.metric("build_path_nodes_per_s", build_path);
  ctx.metric("build_random_nodes_per_s", build_random);

  // Batched sweep scaling: independent wave instances through the pool,
  // 1 thread vs the configured worker count.
  const int workers = ctx.opts().threads;
  const int job_count = std::max(8, 2 * workers);
  std::vector<core::BatchJob> jobs;
  const auto batch_n = static_cast<graph::NodeId>(ctx.scaled(2048));
  for (int i = 0; i < job_count; ++i) {
    core::BatchJob job;
    job.label = "wave-" + std::to_string(i);
    job.scale = static_cast<double>(batch_n);
    job.seed = static_cast<std::uint64_t>(i);
    job.run = [batch_n](std::uint64_t) {
      const graph::Tree t = graph::make_path(batch_n);
      ArenaWave p;
      local::Engine e(t);
      const auto stats = e.run(p);
      return core::measure_run(static_cast<double>(batch_n), stats,
                               problems::CheckResult::pass());
    };
    jobs.push_back(std::move(job));
  }
  const auto serial_start = std::chrono::steady_clock::now();
  (void)core::run_batch(jobs, 1);
  const double serial_s = seconds_since(serial_start);
  const auto parallel_start = std::chrono::steady_clock::now();
  (void)core::run_batch(jobs, workers);
  const double parallel_s = seconds_since(parallel_start);
  std::printf("\n  batch of %d wave jobs: 1 thread %.3f s, %d threads "
              "%.3f s (%.2fx)\n",
              job_count, serial_s, workers, parallel_s,
              serial_s / parallel_s);
  ctx.metric("batch_jobs", static_cast<double>(job_count));
  ctx.metric("batch_serial_s", serial_s);
  ctx.metric("batch_parallel_s", parallel_s);
  ctx.metric("batch_parallel_speedup", serial_s / parallel_s);
}

}  // namespace lcl::bench
