// Substrate micro-benchmarks: arena-engine round throughput against the
// frozen pre-refactor baseline (legacy_engine.hpp), plus the batched
// multi-thread sweep speedup. These guard the "simulation cost =
// O(sum of termination rounds)" property the experiment scenarios rely
// on, and keep the engine's perf trajectory visible in BENCH_*.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/batch.hpp"
#include "graph/builders.hpp"
#include "legacy_engine.hpp"
#include "local/engine.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

// The micro workload, implemented identically against both engines: a
// token wave down a path. Node 0 emits at round 1 and terminates; node i
// forwards one hop per round and terminates when the token arrives, so
// sum_v T_v = Theta(n^2) engine-visible node-rounds with tiny registers —
// the engine's bookkeeping dominates, which is exactly what we measure.

class ArenaWave final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const local::RegView left = ctx.peek(0);
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(0);
    }
  }
};

class LegacyWave final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const bench::legacy::Register& left = ctx.peek(0);
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(0);
    }
  }
};

// A staggered-termination workload: node v terminates at round
// (v mod 64) + 1, so the alive set shrinks by n/64 nodes per round —
// stresses alive-list compaction rather than register traffic.

class ArenaStagger final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.round() == (ctx.node() % 64) + 1) ctx.terminate(0);
  }
};

class LegacyStagger final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override {
    if (ctx.round() == (ctx.node() % 64) + 1) ctx.terminate(0);
  }
};

// A setup-dominated workload: every node terminates in round 1, so
// sum_v T_v = n and one "run" is almost entirely per-run engine setup.
// This is the micro that quantifies snapshot elimination: the arena
// engine now borrows the Tree's native CSR (zero adjacency work per run)
// where it previously rebuilt a flat offset+neighbor copy every run.

class ArenaFlash final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override { ctx.terminate(0); }
};

class LegacyFlash final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx&) override {}
  void on_round(bench::legacy::NodeCtx& ctx) override { ctx.terminate(0); }
};

// A chatty workload mirroring the real wave programs (generic_hier's
// 6-word wave registers, decomp_program's per-round republish): every
// alive node republishes a 6-word register every round and terminates
// after 64 rounds. Register traffic dominates: the legacy engine pays a
// vector assignment on publish plus a vector copy at the flip, the arena
// engine one 6-word write plus a parity toggle.

class ArenaChatter final : public local::Program {
 public:
  void on_init(local::NodeCtx& ctx) override {
    ctx.publish({0, 0, 0, 0, 0, 0});
  }
  void on_round(local::NodeCtx& ctx) override {
    const local::RegView mine = ctx.own();
    ctx.publish({mine[0] + 1, mine[1], mine[2], mine[3], mine[4],
                 mine[5]});
    if (ctx.round() == 64) ctx.terminate(0);
  }
};

class LegacyChatter final : public bench::legacy::Program {
 public:
  void on_init(bench::legacy::NodeCtx& ctx) override {
    ctx.publish({0, 0, 0, 0, 0, 0});
  }
  void on_round(bench::legacy::NodeCtx& ctx) override {
    const bench::legacy::Register& mine = ctx.peek_self();
    ctx.publish({mine[0] + 1, mine[1], mine[2], mine[3], mine[4],
                 mine[5]});
    if (ctx.round() == 64) ctx.terminate(0);
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Node-rounds per second of `run_once` (which returns sum_v T_v per
/// call), timed over enough iterations to dominate clock noise.
template <typename F>
double throughput(F run_once) {
  // Warm-up also primes allocator caches for both engines alike.
  std::int64_t node_rounds = run_once();
  const auto start = std::chrono::steady_clock::now();
  std::int64_t total = 0;
  int iters = 0;
  do {
    total += run_once();
    ++iters;
  } while (seconds_since(start) < 0.5 && iters < 50);
  (void)node_rounds;
  return static_cast<double>(total) / seconds_since(start);
}

}  // namespace

namespace lcl::bench {

void run_engine_micro(ScenarioContext& ctx) {
  std::printf("== substrate micro-benchmarks: arena engine vs legacy "
              "baseline ==\n\n");

  const auto wave_n = static_cast<graph::NodeId>(ctx.scaled(4096));
  const auto stagger_n = static_cast<graph::NodeId>(ctx.scaled(1 << 16));
  const graph::Tree wave_tree = graph::make_path(wave_n);
  const graph::Tree stagger_tree = graph::make_path(stagger_n);

  const double arena_wave = throughput([&] {
    ArenaWave p;
    local::Engine e(wave_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_wave = throughput([&] {
    LegacyWave p;
    legacy::Engine e(wave_tree);
    return e.run(p, wave_n + 2).total_rounds;
  });
  const double arena_stagger = throughput([&] {
    ArenaStagger p;
    local::Engine e(stagger_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_stagger = throughput([&] {
    LegacyStagger p;
    legacy::Engine e(stagger_tree);
    return e.run(p, 65).total_rounds;
  });
  const auto chatter_n = static_cast<graph::NodeId>(ctx.scaled(1 << 14));
  const graph::Tree chatter_tree = graph::make_path(chatter_n);
  const double arena_chatter = throughput([&] {
    ArenaChatter p;
    local::Engine e(chatter_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_chatter = throughput([&] {
    LegacyChatter p;
    legacy::Engine e(chatter_tree);
    return e.run(p, 65).total_rounds;
  });

  std::printf("  %-28s %14s %14s %8s\n", "workload", "arena Mnr/s",
              "legacy Mnr/s", "speedup");
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("wave path n=" + std::to_string(wave_n)).c_str(),
              arena_wave / 1e6, legacy_wave / 1e6,
              arena_wave / legacy_wave);
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("stagger n=" + std::to_string(stagger_n)).c_str(),
              arena_stagger / 1e6, legacy_stagger / 1e6,
              arena_stagger / legacy_stagger);
  ctx.metric("arena_wave_node_rounds_per_s", arena_wave);
  ctx.metric("legacy_wave_node_rounds_per_s", legacy_wave);
  ctx.metric("wave_speedup", arena_wave / legacy_wave);
  ctx.metric("arena_stagger_node_rounds_per_s", arena_stagger);
  ctx.metric("legacy_stagger_node_rounds_per_s", legacy_stagger);
  ctx.metric("stagger_speedup", arena_stagger / legacy_stagger);
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("chatter n=" + std::to_string(chatter_n)).c_str(),
              arena_chatter / 1e6, legacy_chatter / 1e6,
              arena_chatter / legacy_chatter);
  ctx.metric("arena_chatter_node_rounds_per_s", arena_chatter);
  ctx.metric("legacy_chatter_node_rounds_per_s", legacy_chatter);
  ctx.metric("chatter_speedup", arena_chatter / legacy_chatter);

  const auto flash_n = static_cast<graph::NodeId>(ctx.scaled(1 << 15));
  const graph::Tree flash_tree = graph::make_path(flash_n);
  const double arena_flash = throughput([&] {
    ArenaFlash p;
    local::Engine e(flash_tree);
    return e.run(p).total_rounds;
  });
  const double legacy_flash = throughput([&] {
    LegacyFlash p;
    legacy::Engine e(flash_tree);
    return e.run(p, 2).total_rounds;
  });
  std::printf("  %-28s %14.2f %14.2f %7.2fx\n",
              ("flash (setup) n=" + std::to_string(flash_n)).c_str(),
              arena_flash / 1e6, legacy_flash / 1e6,
              arena_flash / legacy_flash);
  ctx.metric("arena_flash_node_rounds_per_s", arena_flash);
  ctx.metric("legacy_flash_node_rounds_per_s", legacy_flash);
  ctx.metric("flash_speedup", arena_flash / legacy_flash);

  const double overall = std::pow((arena_wave / legacy_wave) *
                                      (arena_stagger / legacy_stagger) *
                                      (arena_chatter / legacy_chatter) *
                                      (arena_flash / legacy_flash),
                                  0.25);
  std::printf("  %-28s %14s %14s %7.2fx\n", "geometric mean", "", "",
              overall);
  ctx.metric("overall_speedup", overall);

  // Instance-construction throughput through the per-thread TreeBuilder
  // arena (CSR emission + validation; no vector-of-vectors adjacency).
  // Absolute numbers tracked across PRs for the allocation trajectory.
  const auto build_n = static_cast<graph::NodeId>(ctx.scaled(1 << 14));
  const double build_path = throughput([&] {
    const graph::Tree t = graph::make_path(build_n);
    return static_cast<std::int64_t>(t.size());
  });
  const double build_random = throughput([&] {
    const graph::Tree t = graph::make_random_tree(build_n, 4, 42);
    return static_cast<std::int64_t>(t.size());
  });
  std::printf("\n  instance builds (arena), n=%d: path %.2f Mnodes/s, "
              "random %.2f Mnodes/s\n",
              build_n, build_path / 1e6, build_random / 1e6);
  ctx.metric("build_path_nodes_per_s", build_path);
  ctx.metric("build_random_nodes_per_s", build_random);

  // Batched sweep scaling: independent wave instances through the pool,
  // 1 thread vs the configured worker count.
  const int workers = ctx.opts().threads;
  const int job_count = std::max(8, 2 * workers);
  std::vector<core::BatchJob> jobs;
  const auto batch_n = static_cast<graph::NodeId>(ctx.scaled(2048));
  for (int i = 0; i < job_count; ++i) {
    core::BatchJob job;
    job.label = "wave-" + std::to_string(i);
    job.scale = static_cast<double>(batch_n);
    job.seed = static_cast<std::uint64_t>(i);
    job.run = [batch_n](std::uint64_t) {
      const graph::Tree t = graph::make_path(batch_n);
      ArenaWave p;
      local::Engine e(t);
      const auto stats = e.run(p);
      return core::measure_run(static_cast<double>(batch_n), stats,
                               problems::CheckResult::pass());
    };
    jobs.push_back(std::move(job));
  }
  const auto serial_start = std::chrono::steady_clock::now();
  (void)core::run_batch(jobs, 1);
  const double serial_s = seconds_since(serial_start);
  const auto parallel_start = std::chrono::steady_clock::now();
  (void)core::run_batch(jobs, workers);
  const double parallel_s = seconds_since(parallel_start);
  std::printf("\n  batch of %d wave jobs: 1 thread %.3f s, %d threads "
              "%.3f s (%.2fx)\n",
              job_count, serial_s, workers, parallel_s,
              serial_s / parallel_s);
  ctx.metric("batch_jobs", static_cast<double>(job_count));
  ctx.metric("batch_serial_s", serial_s);
  ctx.metric("batch_parallel_s", parallel_s);
  ctx.metric("batch_parallel_speedup", serial_s / parallel_s);
}

}  // namespace lcl::bench
