// solver_matrix — the full algorithm × family cross-product.
//
// The landscape experiments (E1..E14) each pin one solver to one paper
// construction; this scenario is the registry's combinatorial
// complement: every solver selected by --algos runs on every compatible
// instance family selected by --families, through the one uniform code
// path (`core::make_solver_job`: family build, declared input
// preparation, registry factory, certification by the solver's own
// checker binding). Every cell is certified — a check_failed anywhere is
// a solver bug on a shape the hand-wired scenarios never exercised —
// and reports node-averaged vs worst-case rounds side by side, the gap
// the paper's landscape classifies. --algo-opt key=value overrides
// apply to every selected solver declaring the key (e.g. k=3 deepens
// every hierarchical solver at once).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/batch.hpp"
#include "graph/families.hpp"
#include "scenario.hpp"

namespace lcl::bench {

void run_solver_matrix(ScenarioContext& ctx) {
  const std::vector<std::string>& algos = ctx.opts().algos;
  const std::vector<std::string>& families = ctx.opts().families;

  std::printf(
      "== solver matrix: %zu solvers x %zu families, every cell "
      "certified ==\n\n",
      algos.size(), families.size());
  std::printf("  %-18s %-16s %8s %12s %10s %8s %s\n", "solver", "family",
              "n", "node-avg", "worst", "p99", "status");

  int cells_total = 0;
  int cells_ok = 0;
  int cells_check_failed = 0;
  for (const std::string& algo_name : algos) {
    const algo::SolverSpec& spec = algo::solver(algo_name);

    // Base config: every --algo-opt this solver declares. Validation of
    // ranges happens inside make_solver_job (eagerly, via the spec).
    algo::SolverConfig base;
    for (const std::string& kv : ctx.opts().algo_opts) {
      if (spec.find_option(algo::split_option(kv).first) != nullptr) {
        algo::apply_option(spec, base, kv);
      }
    }

    for (const std::string& family : families) {
      const graph::Family* fam = graph::find_family(family);
      if (fam == nullptr || !spec.compatible(*fam)) continue;
      ++cells_total;

      // Name-keyed base seed: a cell's instances are identical no
      // matter which other solvers/families were selected alongside
      // it, so single-cell reruns reproduce the full matrix exactly.
      const std::uint64_t cell_seed =
          core::stable_name_seed(algo_name + "@" + family);
      std::vector<core::BatchJob> jobs;
      for (const std::int64_t base_n : {2500, 10000}) {
        const auto n = static_cast<graph::NodeId>(ctx.scaled(base_n, 8));
        // Every registered solver terminates in o(n) + additive pad
        // rounds; the linear bound only trips on hangs, which must
        // surface as structured truncation, not a stuck sweep.
        const std::int64_t max_rounds = 8 * static_cast<std::int64_t>(n) +
                                        4096;
        jobs.push_back(core::make_solver_job(
            algo_name + "@" + family + "-n" + std::to_string(n),
            static_cast<double>(n), cell_seed + static_cast<std::uint64_t>(n),
            algo_name, base, family, n, /*delta=*/0, max_rounds));
      }
      auto runs = ctx.run_sweep(std::move(jobs));

      bool all_ok = true;
      bool any_check_failed = false;
      for (const core::MeasuredRun& r : runs) {
        all_ok = all_ok && r.ok();
        any_check_failed = any_check_failed ||
                           r.status == core::RunStatus::kCheckFailed;
      }
      cells_ok += all_ok ? 1 : 0;
      cells_check_failed += any_check_failed ? 1 : 0;
      const core::MeasuredRun& top = runs.back();
      std::printf("  %-18s %-16s %8lld %12.2f %10lld %8lld %s%s\n",
                  algo_name.c_str(), family.c_str(),
                  static_cast<long long>(top.n), top.node_averaged,
                  static_cast<long long>(top.worst_case),
                  static_cast<long long>(top.term.p99),
                  all_ok ? "ok" : core::to_string(top.status),
                  all_ok || top.check_reason.empty()
                      ? ""
                      : (" (" + top.check_reason + ")").c_str());
      ctx.record("solver_matrix: " + algo_name + " @ " + family, "n",
                 0.0, 1.0, std::move(runs));
    }
  }

  ctx.metric("cells_total", static_cast<double>(cells_total));
  ctx.metric("cells_ok", static_cast<double>(cells_ok));
  ctx.metric("cells_check_failed",
             static_cast<double>(cells_check_failed));
  ctx.metric("solvers_swept", static_cast<double>(algos.size()));
  std::printf("\n  %d/%d cells fully certified (%d check_failed)\n\n",
              cells_ok, cells_total, cells_check_failed);
}

}  // namespace lcl::bench
