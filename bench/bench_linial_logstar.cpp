// E12 — Corollary 17 / Linial's bound (the substrate of every level-k
// phase): 3-coloring a path costs Theta(log* n) rounds, worst case AND
// node-averaged (Feuilloley's Lemma 16 transfers the bound). The real
// Cole-Vishkin schedule is nearly flat in n (log* of any feasible n is
// tiny); the virtual-log* pad then maps Lambda linearly onto rounds,
// which is what the log*-regime benches lean on.
#include <cstdio>

#include "algo/cole_vishkin.hpp"
#include "algo/registry.hpp"
#include "graph/builders.hpp"
#include "local/logstar.hpp"
#include "scenario.hpp"

namespace lcl::bench {

void run_linial_logstar(ScenarioContext& ctx) {
  std::printf("== E12: Linial / Corollary 17 — 3-coloring paths in "
              "Theta(log* n) ==\n\n");
  const algo::SolverSpec& spec35 = algo::solver("generic_hier_35");

  std::printf("Real Cole-Vishkin (no pad): rounds vs n\n");
  std::printf("  %10s %10s %12s %12s %10s\n", "n", "log*(n)",
              "CV schedule", "worst-case", "node-avg");
  double cv_node_avg = 0.0;
  for (const std::int64_t base : {100, 1000, 10000, 100000, 1000000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    graph::Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled,
                      static_cast<std::uint64_t>(n));
    algo::SolverConfig cfg;
    cfg.set("k", 1);
    const auto run = algo::run_registered(spec35, t, cfg);
    cv_node_avg = run.stats.node_averaged;
    std::printf("  %10d %10d %12zu %12lld %10.2f %s\n", n,
                local::log_star(static_cast<std::uint64_t>(n)),
                algo::cv_schedule(n).size(),
                static_cast<long long>(run.stats.worst_case),
                run.stats.node_averaged, run.verdict.ok ? "" : "INVALID");
  }
  ctx.metric("cv_node_avg_largest_n", cv_node_avg);

  std::printf("\nVirtual log* (pad Lambda): rounds vs Lambda at n = "
              "%lld\n",
              static_cast<long long>(ctx.scaled(20000)));
  std::printf("  %10s %12s %10s\n", "Lambda", "worst-case", "node-avg");
  for (const std::int64_t lambda : {0, 16, 64, 256, 1024}) {
    graph::Tree t =
        graph::make_path(static_cast<graph::NodeId>(ctx.scaled(20000)));
    graph::assign_ids(t, graph::IdScheme::kShuffled, 9);
    algo::SolverConfig cfg;
    cfg.set("k", 1);
    cfg.set("symmetry_pad", lambda);
    const auto run = algo::run_registered(spec35, t, cfg);
    std::printf("  %10lld %12lld %10.2f\n",
                static_cast<long long>(lambda),
                static_cast<long long>(run.stats.worst_case),
                run.stats.node_averaged);
  }

  std::printf("\n2-coloring contrast (the Theta(n) substrate):\n");
  for (const std::int64_t base : {1000, 4000, 16000}) {
    const auto n = static_cast<graph::NodeId>(ctx.scaled(base));
    graph::Tree t = graph::make_path(n);
    algo::SolverConfig cfg;
    cfg.set("k", 1);
    const auto run =
        algo::run_registered(algo::solver("generic_hier_25"), t, cfg);
    std::printf("  n=%6d: node-avg %10.1f (n/4 = %.1f)\n", n,
                run.stats.node_averaged, n / 4.0);
  }
}

}  // namespace lcl::bench
