// E9 — Theorem 7 (Section 11): there is no LCL with deterministic
// node-averaged complexity in omega(1)..(log* n)^{o(1)}, and membership
// in O(1) is decidable. The decision procedure = testing procedure
// (Algorithm 1 machinery, Definitions 73/74) + the constant-good check
// on the induced compress problems (Definitions 77/80, Lemma 81).
//
// This scenario runs the decision procedure on a zoo of path-form LCLs
// and prints, for each: solvability, the worst compress-problem class,
// the constant-good verdict, and the implied node-averaged class per the
// Theorem-7 dichotomy. It then cross-checks two verdicts against the
// simulator: the 3-coloring compress problem really costs ~log* rounds,
// and the free problem really costs O(1).
#include <cstdio>

#include "algo/generic_hier.hpp"
#include "bw/constant_good.hpp"
#include "bw/label_sets.hpp"
#include "bw/path_lcl.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "scenario.hpp"

namespace {

using namespace lcl;

void report_lcl(const bw::PathLcl& lcl) {
  const auto t = bw::testing_procedure(lcl);
  const auto v = bw::decide_constant_good(lcl);
  std::printf("  %-22s %-10s %-14s %-14s %s\n", lcl.name.c_str(),
              v.solvable ? "solvable" : "unsolvable",
              bw::to_string(v.worst_compress).c_str(),
              v.constant_good ? "constant-good" : "needs split",
              v.node_averaged_class.c_str());
  std::printf("  %-22s   label-sets explored: %zu, empty found: %s\n", "",
              t.seen.size(), t.good ? "no" : "yes");
}

}  // namespace

namespace lcl::bench {

void run_thm7_decidability(ScenarioContext& ctx) {
  std::printf("== E9: Theorem 7 — the omega(1)..(log* n)^{o(1)} gap & "
              "decidability ==\n\n");
  std::printf("  %-22s %-10s %-14s %-14s %s\n", "problem", "status",
              "compress cls", "f_Pi,inf", "node-averaged class");
  report_lcl(bw::make_free_lcl(3));
  report_lcl(bw::make_three_coloring_lcl());
  report_lcl(bw::make_two_coloring_lcl());
  report_lcl(bw::make_unsolvable_lcl());

  std::printf("\nSimulator cross-checks:\n");
  const auto n = static_cast<graph::NodeId>(ctx.scaled(20000));
  {
    graph::Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled, 3);
    algo::GenericOptions o;
    o.variant = problems::Variant::kThreeHalf;
    o.k = 1;
    const auto stats = algo::run_generic(t, o);
    std::printf("  3-coloring (not constant-good): node-avg %.2f on "
                "n=%d — Theta(log*)-sized, not O(1)\n",
                stats.node_averaged, n);
    ctx.metric("three_coloring_node_avg", stats.node_averaged);
  }
  {
    // The free problem solved by everyone outputting label 0 at once.
    class Free final : public local::Program {
     public:
      void on_init(local::NodeCtx& ctx) override { ctx.terminate(0); }
      void on_round(local::NodeCtx&) override {}
    };
    graph::Tree t = graph::make_path(n);
    local::Engine e(t);
    Free p;
    const auto stats = e.run(p);
    std::printf("  free LCL (constant-good): node-avg %.2f — O(1) as "
                "decided\n",
                stats.node_averaged);
    ctx.metric("free_lcl_node_avg", stats.node_averaged);
  }
  std::printf(
      "\nDichotomy (Theorem 7): constant-good => O(1) node-averaged;\n"
      "otherwise the compress paths must be split at Theta(log* n) cost\n"
      "and nothing lies in omega(1)..(log* n)^{o(1)}.\n");
}

}  // namespace lcl::bench
