#include "compare.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace lcl::bench {

namespace {

using core::json::Value;

/// Schema version of "lclbench-v<k>"; -1 for anything else.
int schema_version(const std::string& schema) {
  const std::string prefix = "lclbench-v";
  if (schema.rfind(prefix, 0) != 0) return -1;
  try {
    std::size_t used = 0;
    const int v = std::stoi(schema.substr(prefix.size()), &used);
    if (used != schema.size() - prefix.size()) return -1;
    return v;
  } catch (const std::exception&) {
    return -1;
  }
}

/// Whether a run record is ok under either schema: v3 writes a "status"
/// string, v2 only the "valid" bool.
bool run_ok(const Value& run) {
  const Value* status = run.find("status");
  if (status != nullptr) return status->string_or("") == "ok";
  return run.get_bool("valid", false);
}

struct Tally {
  int series_compared = 0;
  int regressions = 0;
  int warnings = 0;

  void regression(const std::string& what) {
    ++regressions;
    std::printf("REGRESSION: %s\n", what.c_str());
  }
  void warning(const std::string& what) {
    ++warnings;
    std::printf("warning: %s\n", what.c_str());
  }
};

const Value* find_by_key(const Value& arr, std::string_view key,
                         const std::string& value) {
  if (!arr.is_array()) return nullptr;
  for (const Value& e : arr.array) {
    if (e.get_string(key, "") == value) return &e;
  }
  return nullptr;
}

int count_not_ok(const Value& series) {
  const Value* runs = series.find("runs");
  if (runs == nullptr || !runs->is_array()) return 0;
  int bad = 0;
  for (const Value& run : runs->array) {
    if (!run_ok(run)) ++bad;
  }
  return bad;
}

int count_runs(const Value& series) {
  const Value* runs = series.find("runs");
  return runs != nullptr && runs->is_array()
             ? static_cast<int>(runs->array.size())
             : 0;
}

void compare_series(const std::string& where, const Value& old_series,
                    const Value& new_series, const CompareOptions& opts,
                    Tally& tally) {
  ++tally.series_compared;

  // Coverage: losing sweep points is a regression — a series that
  // silently recorded fewer (or no) runs must not read as healthy just
  // because nothing in it failed.
  const int old_count = count_runs(old_series);
  const int new_count = count_runs(new_series);
  if (new_count < old_count) {
    tally.regression(where + ": only " + std::to_string(new_count) +
                     " runs recorded (was " + std::to_string(old_count) +
                     ")");
  }

  // Validity: the new snapshot must not have more failing runs than the
  // old one (statuses truncated/build_failed/exception all count).
  const int old_bad = count_not_ok(old_series);
  const int new_bad = count_not_ok(new_series);
  if (new_bad > old_bad) {
    tally.regression(where + ": " + std::to_string(new_bad) +
                     " non-ok runs (was " + std::to_string(old_bad) + ")");
  }

  // Exponent drift, when both snapshots managed a fit.
  const Value* old_fit = old_series.find("fitted_exponent");
  const Value* new_fit = new_series.find("fitted_exponent");
  if (old_fit != nullptr && new_fit != nullptr) {
    const double drift =
        std::abs(new_fit->number_or(0.0) - old_fit->number_or(0.0));
    if (drift > opts.tol_exponent) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "exponent drift %.4f > %.4f (%.4f -> %.4f)", drift,
                    opts.tol_exponent, old_fit->number_or(0.0),
                    new_fit->number_or(0.0));
      tally.regression(where + ": " + buf);
    }
  } else if (old_fit != nullptr && new_fit == nullptr) {
    tally.warning(where + ": fitted exponent disappeared (too few valid "
                          "samples in the new snapshot)");
  }

  // Node-averaged drift at matching sweep scales (opt-in: only sound
  // when both snapshots ran the same --n).
  if (opts.tol_avg > 0.0) {
    const Value* old_runs = old_series.find("runs");
    const Value* new_runs = new_series.find("runs");
    if (old_runs != nullptr && old_runs->is_array() &&
        new_runs != nullptr && new_runs->is_array()) {
      for (const Value& old_run : old_runs->array) {
        if (!run_ok(old_run)) continue;
        const double scale = old_run.get_number("scale", -1.0);
        for (const Value& new_run : new_runs->array) {
          if (new_run.get_number("scale", -2.0) != scale ||
              !run_ok(new_run)) {
            continue;
          }
          const double old_avg = old_run.get_number("node_averaged", 0.0);
          const double new_avg = new_run.get_number("node_averaged", 0.0);
          if (old_avg > 0.0 &&
              std::abs(new_avg / old_avg - 1.0) > opts.tol_avg) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "node-averaged at scale %.0f drifted %.1f%% "
                          "(%.3f -> %.3f)",
                          scale, 100.0 * (new_avg / old_avg - 1.0),
                          old_avg, new_avg);
            tally.regression(where + ": " + buf);
          }
          break;
        }
      }
    }
  }
}

}  // namespace

int compare_snapshots(const std::string& old_path,
                      const std::string& new_path,
                      const CompareOptions& opts) {
  Value old_snap;
  Value new_snap;
  try {
    old_snap = core::json::parse_file(old_path);
    new_snap = core::json::parse_file(new_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclbench --compare: %s\n", e.what());
    return 2;
  }

  const std::string old_schema = old_snap.get_string("schema", "");
  const std::string new_schema = new_snap.get_string("schema", "");
  std::printf("comparing %s (%s) -> %s (%s)\n", old_path.c_str(),
              old_schema.c_str(), new_path.c_str(), new_schema.c_str());

  Tally tally;
  const int old_version = schema_version(old_schema);
  const int new_version = schema_version(new_schema);
  if (old_version < 0) {
    std::fprintf(stderr, "lclbench --compare: %s has unknown schema '%s'\n",
                 old_path.c_str(), old_schema.c_str());
    return 2;
  }
  if (new_version < 0) {
    tally.regression("new snapshot has unknown schema '" + new_schema +
                     "'");
  } else if (new_version < old_version) {
    tally.regression("schema downgraded " + old_schema + " -> " +
                     new_schema);
  }

  const Value* old_scenarios = old_snap.find("scenarios");
  const Value* new_scenarios = new_snap.find("scenarios");
  if (old_scenarios == nullptr || !old_scenarios->is_array() ||
      new_scenarios == nullptr || !new_scenarios->is_array()) {
    std::fprintf(stderr,
                 "lclbench --compare: snapshot missing \"scenarios\"\n");
    return 2;
  }

  double old_wall_total = 0.0;
  double new_wall_total = 0.0;
  for (const Value& old_scenario : old_scenarios->array) {
    const std::string name = old_scenario.get_string("name", "?");
    const Value* new_scenario = find_by_key(*new_scenarios, "name", name);
    if (new_scenario == nullptr) {
      if (opts.allow_missing) {
        tally.warning("scenario '" + name + "' missing from new snapshot");
      } else {
        tally.regression("scenario '" + name +
                         "' missing from new snapshot");
      }
      continue;
    }

    const double old_wall = old_scenario.get_number("wall_ms", 0.0);
    const double new_wall = new_scenario->get_number("wall_ms", 0.0);
    old_wall_total += old_wall;
    new_wall_total += new_wall;
    if (old_wall > 0.0 && new_wall > 0.0) {
      const double ratio = new_wall / old_wall;
      std::printf("  %-22s wall %8.0f ms -> %8.0f ms (%.2fx)\n",
                  name.c_str(), old_wall, new_wall, ratio);
      if (opts.tol_wall > 0.0 && ratio > opts.tol_wall) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "wall time %.2fx > %.2fx budget",
                      ratio, opts.tol_wall);
        tally.regression(name + ": " + buf);
      }
    }

    const Value* old_series_arr = old_scenario.find("series");
    const Value* new_series_arr = new_scenario->find("series");
    if (old_series_arr == nullptr || !old_series_arr->is_array()) continue;
    for (const Value& old_series : old_series_arr->array) {
      const std::string title = old_series.get_string("title", "?");
      const Value* new_series =
          new_series_arr == nullptr
              ? nullptr
              : find_by_key(*new_series_arr, "title", title);
      const std::string where = name + " / \"" + title + "\"";
      if (new_series == nullptr) {
        if (opts.allow_missing) {
          tally.warning(where + ": series missing from new snapshot");
        } else {
          tally.regression(where + ": series missing from new snapshot");
        }
        continue;
      }
      compare_series(where, old_series, *new_series, opts, tally);
    }
  }

  if (old_wall_total > 0.0 && new_wall_total > 0.0) {
    std::printf("total wall: %.0f ms -> %.0f ms (%.2fx)\n", old_wall_total,
                new_wall_total, new_wall_total / old_wall_total);
  }
  std::printf(
      "summary: %d series compared, %d regression(s), %d warning(s)\n",
      tally.series_compared, tally.regressions, tally.warnings);
  return tally.regressions > 0 ? 1 : 0;
}

}  // namespace lcl::bench
