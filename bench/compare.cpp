#include "compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/snapshot.hpp"

namespace lcl::bench {

namespace {

using core::json::Value;

/// Schema version of "lclbench-v<k>"; -1 for anything else.
int schema_version(const std::string& schema) {
  const std::string prefix = "lclbench-v";
  if (schema.rfind(prefix, 0) != 0) return -1;
  try {
    std::size_t used = 0;
    const int v = std::stoi(schema.substr(prefix.size()), &used);
    if (used != schema.size() - prefix.size()) return -1;
    return v;
  } catch (const std::exception&) {
    return -1;
  }
}

/// Whether a run record is ok under either schema: v3 writes a "status"
/// string, v2 only the "valid" bool.
bool run_ok(const Value& run) {
  const Value* status = run.find("status");
  if (status != nullptr) return status->string_or("") == "ok";
  return run.get_bool("valid", false);
}

struct Tally {
  int series_compared = 0;
  int regressions = 0;
  int warnings = 0;

  void regression(const std::string& what) {
    ++regressions;
    std::printf("REGRESSION: %s\n", what.c_str());
  }
  void warning(const std::string& what) {
    ++warnings;
    std::printf("warning: %s\n", what.c_str());
  }
};

const Value* find_by_key(const Value& arr, std::string_view key,
                         const std::string& value) {
  if (!arr.is_array()) return nullptr;
  for (const Value& e : arr.array) {
    if (e.get_string(key, "") == value) return &e;
  }
  return nullptr;
}

int count_not_ok(const Value& series) {
  const Value* runs = series.find("runs");
  if (runs == nullptr || !runs->is_array()) return 0;
  int bad = 0;
  for (const Value& run : runs->array) {
    if (!run_ok(run)) ++bad;
  }
  return bad;
}

int count_runs(const Value& series) {
  const Value* runs = series.find("runs");
  return runs != nullptr && runs->is_array()
             ? static_cast<int>(runs->array.size())
             : 0;
}

void compare_series(const std::string& where, const Value& old_series,
                    const Value& new_series, const CompareOptions& opts,
                    Tally& tally) {
  ++tally.series_compared;

  // Coverage: losing sweep points is a regression — a series that
  // silently recorded fewer (or no) runs must not read as healthy just
  // because nothing in it failed.
  const int old_count = count_runs(old_series);
  const int new_count = count_runs(new_series);
  if (new_count < old_count) {
    tally.regression(where + ": only " + std::to_string(new_count) +
                     " runs recorded (was " + std::to_string(old_count) +
                     ")");
  }

  // Validity: the new snapshot must not have more failing runs than the
  // old one (statuses truncated/build_failed/exception all count).
  const int old_bad = count_not_ok(old_series);
  const int new_bad = count_not_ok(new_series);
  if (new_bad > old_bad) {
    tally.regression(where + ": " + std::to_string(new_bad) +
                     " non-ok runs (was " + std::to_string(old_bad) + ")");
  }

  // Exponent drift, when both snapshots managed a fit.
  const Value* old_fit = old_series.find("fitted_exponent");
  const Value* new_fit = new_series.find("fitted_exponent");
  if (old_fit != nullptr && new_fit != nullptr) {
    const double drift =
        std::abs(new_fit->number_or(0.0) - old_fit->number_or(0.0));
    if (drift > opts.tol_exponent) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "exponent drift %.4f > %.4f (%.4f -> %.4f)", drift,
                    opts.tol_exponent, old_fit->number_or(0.0),
                    new_fit->number_or(0.0));
      tally.regression(where + ": " + buf);
    }
  } else if (old_fit != nullptr && new_fit == nullptr) {
    tally.warning(where + ": fitted exponent disappeared (too few valid "
                          "samples in the new snapshot)");
  }

  // Node-averaged drift at matching sweep scales (opt-in: only sound
  // when both snapshots ran the same --n).
  if (opts.tol_avg > 0.0) {
    const Value* old_runs = old_series.find("runs");
    const Value* new_runs = new_series.find("runs");
    if (old_runs != nullptr && old_runs->is_array() &&
        new_runs != nullptr && new_runs->is_array()) {
      for (const Value& old_run : old_runs->array) {
        if (!run_ok(old_run)) continue;
        const double scale = old_run.get_number("scale", -1.0);
        for (const Value& new_run : new_runs->array) {
          if (new_run.get_number("scale", -2.0) != scale ||
              !run_ok(new_run)) {
            continue;
          }
          const double old_avg = old_run.get_number("node_averaged", 0.0);
          const double new_avg = new_run.get_number("node_averaged", 0.0);
          if (old_avg > 0.0 &&
              std::abs(new_avg / old_avg - 1.0) > opts.tol_avg) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "node-averaged at scale %.0f drifted %.1f%% "
                          "(%.3f -> %.3f)",
                          scale, 100.0 * (new_avg / old_avg - 1.0),
                          old_avg, new_avg);
            tally.regression(where + ": " + buf);
          }
          break;
        }
      }
    }
  }
}

}  // namespace

int compare_snapshots(const std::string& old_path,
                      const std::string& new_path,
                      const CompareOptions& opts) {
  Value old_snap;
  Value new_snap;
  try {
    old_snap = core::snapshot::load_any(old_path);
    new_snap = core::snapshot::load_any(new_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lclbench --compare: %s\n", e.what());
    return 2;
  }

  const std::string old_schema = old_snap.get_string("schema", "");
  const std::string new_schema = new_snap.get_string("schema", "");
  std::printf("comparing %s (%s) -> %s (%s)\n", old_path.c_str(),
              old_schema.c_str(), new_path.c_str(), new_schema.c_str());

  Tally tally;
  const int old_version = schema_version(old_schema);
  const int new_version = schema_version(new_schema);
  if (old_version < 0) {
    std::fprintf(stderr, "lclbench --compare: %s has unknown schema '%s'\n",
                 old_path.c_str(), old_schema.c_str());
    return 2;
  }
  if (new_version < 0) {
    tally.regression("new snapshot has unknown schema '" + new_schema +
                     "'");
  } else if (new_version < old_version) {
    tally.regression("schema downgraded " + old_schema + " -> " +
                     new_schema);
  }

  const Value* old_scenarios = old_snap.find("scenarios");
  const Value* new_scenarios = new_snap.find("scenarios");
  if (old_scenarios == nullptr || !old_scenarios->is_array() ||
      new_scenarios == nullptr || !new_scenarios->is_array()) {
    std::fprintf(stderr,
                 "lclbench --compare: snapshot missing \"scenarios\"\n");
    return 2;
  }

  double old_wall_total = 0.0;
  double new_wall_total = 0.0;
  for (const Value& old_scenario : old_scenarios->array) {
    const std::string name = old_scenario.get_string("name", "?");
    const Value* new_scenario = find_by_key(*new_scenarios, "name", name);
    if (new_scenario == nullptr) {
      if (opts.allow_missing) {
        tally.warning("scenario '" + name + "' missing from new snapshot");
      } else {
        tally.regression("scenario '" + name +
                         "' missing from new snapshot");
      }
      continue;
    }

    const double old_wall = old_scenario.get_number("wall_ms", 0.0);
    const double new_wall = new_scenario->get_number("wall_ms", 0.0);
    old_wall_total += old_wall;
    new_wall_total += new_wall;
    if (old_wall > 0.0 && new_wall > 0.0) {
      const double ratio = new_wall / old_wall;
      std::printf("  %-22s wall %8.0f ms -> %8.0f ms (%.2fx)\n",
                  name.c_str(), old_wall, new_wall, ratio);
      if (opts.tol_wall > 0.0 && ratio > opts.tol_wall) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "wall time %.2fx > %.2fx budget",
                      ratio, opts.tol_wall);
        tally.regression(name + ": " + buf);
      }
    }

    const Value* old_series_arr = old_scenario.find("series");
    const Value* new_series_arr = new_scenario->find("series");
    if (old_series_arr == nullptr || !old_series_arr->is_array()) continue;
    for (const Value& old_series : old_series_arr->array) {
      const std::string title = old_series.get_string("title", "?");
      const Value* new_series =
          new_series_arr == nullptr
              ? nullptr
              : find_by_key(*new_series_arr, "title", title);
      const std::string where = name + " / \"" + title + "\"";
      if (new_series == nullptr) {
        if (opts.allow_missing) {
          tally.warning(where + ": series missing from new snapshot");
        } else {
          tally.regression(where + ": series missing from new snapshot");
        }
        continue;
      }
      compare_series(where, old_series, *new_series, opts, tally);
    }
  }

  if (old_wall_total > 0.0 && new_wall_total > 0.0) {
    std::printf("total wall: %.0f ms -> %.0f ms (%.2fx)\n", old_wall_total,
                new_wall_total, new_wall_total / old_wall_total);
  }
  std::printf(
      "summary: %d series compared, %d regression(s), %d warning(s)\n",
      tally.series_compared, tally.regressions, tally.warnings);
  return tally.regressions > 0 ? 1 : 0;
}

namespace {

/// One loaded history entry, in chronological order after sorting.
struct HistoryEntry {
  std::string path;
  std::string timestamp;
  Value snap;
};

const Value* find_series(const Value& snap, const std::string& scenario,
                         const std::string& title) {
  const Value* scenarios = snap.find("scenarios");
  if (scenarios == nullptr) return nullptr;
  const Value* sc = find_by_key(*scenarios, "name", scenario);
  if (sc == nullptr) return nullptr;
  const Value* series = sc->find("series");
  if (series == nullptr) return nullptr;
  return find_by_key(*series, "title", title);
}

/// Strictly one-directional movement with at least one nonzero step —
/// the shape of a drift, as opposed to measurement noise wobbling
/// around a level.
bool is_monotone(const std::vector<double>& w) {
  bool up = true;
  bool down = true;
  bool moved = false;
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w[i] < w[i - 1]) up = false;
    if (w[i] > w[i - 1]) down = false;
    if (w[i] != w[i - 1]) moved = true;
  }
  return moved && (up || down);
}

std::string trajectory_str(const std::vector<double>& values,
                           const char* fmt) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), fmt, values[i]);
    if (i > 0) out += " -> ";
    out += buf;
  }
  return out;
}

}  // namespace

int history_snapshots(const std::vector<std::string>& paths,
                      const HistoryOptions& opts) {
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "lclbench --history: needs at least 2 snapshots, got "
                 "%zu\n",
                 paths.size());
    return 2;
  }

  std::vector<HistoryEntry> history;
  history.reserve(paths.size());
  for (const std::string& path : paths) {
    HistoryEntry e;
    e.path = path;
    try {
      e.snap = core::snapshot::load_any(path);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "lclbench --history: %s\n", ex.what());
      return 2;
    }
    if (schema_version(e.snap.get_string("schema", "")) < 0) {
      std::fprintf(stderr,
                   "lclbench --history: %s has unknown schema '%s'\n",
                   path.c_str(), e.snap.get_string("schema", "").c_str());
      return 2;
    }
    if (const Value* sc = e.snap.find("scenarios");
        sc == nullptr || !sc->is_array()) {
      std::fprintf(stderr,
                   "lclbench --history: %s missing \"scenarios\"\n",
                   path.c_str());
      return 2;
    }
    e.timestamp = e.snap.get_string("timestamp", "");
    history.push_back(std::move(e));
  }
  // Chronological order: ISO-8601 timestamps sort lexicographically;
  // the stable sort keeps untimestamped snapshots in argument order.
  std::stable_sort(history.begin(), history.end(),
                   [](const HistoryEntry& a, const HistoryEntry& b) {
                     return a.timestamp < b.timestamp;
                   });

  const int n = static_cast<int>(history.size());
  const int window = std::min(std::max(opts.window, 2), n);
  std::printf("history of %d snapshots (trend window %d):\n", n, window);
  for (const HistoryEntry& e : history) {
    std::printf("  %s  %s (%s)\n",
                e.timestamp.empty() ? "(no timestamp)  "
                                    : e.timestamp.c_str(),
                e.path.c_str(), e.snap.get_string("schema", "?").c_str());
  }

  Tally tally;
  const HistoryEntry& latest = history.back();
  const HistoryEntry& previous = history[history.size() - 2];

  // Schema must never move backwards along the history.
  int max_seen = -1;
  for (const HistoryEntry& e : history) {
    const int v = schema_version(e.snap.get_string("schema", ""));
    if (v < max_seen) {
      tally.regression(e.path + ": schema downgraded to " +
                       e.snap.get_string("schema", "") +
                       " mid-history");
    }
    max_seen = std::max(max_seen, v);
  }

  // Collect the series universe in first-appearance order, and the
  // scenario universe likewise.
  std::vector<std::pair<std::string, std::string>> series_keys;
  std::vector<std::string> scenario_names;
  for (const HistoryEntry& e : history) {
    for (const Value& sc : e.snap.find("scenarios")->array) {
      const std::string name = sc.get_string("name", "?");
      if (std::find(scenario_names.begin(), scenario_names.end(), name) ==
          scenario_names.end()) {
        scenario_names.push_back(name);
      }
      const Value* series = sc.find("series");
      if (series == nullptr || !series->is_array()) continue;
      for (const Value& se : series->array) {
        const std::pair<std::string, std::string> key = {
            name, se.get_string("title", "?")};
        if (std::find(series_keys.begin(), series_keys.end(), key) ==
            series_keys.end()) {
          series_keys.push_back(key);
        }
      }
    }
  }

  // Per-scenario wall trajectories (reported always, gated by
  // --tol-wall over the window).
  for (const std::string& name : scenario_names) {
    std::vector<double> walls;
    for (const HistoryEntry& e : history) {
      const Value* sc =
          find_by_key(*e.snap.find("scenarios"), "name", name);
      walls.push_back(sc == nullptr ? -1.0
                                    : sc->get_number("wall_ms", -1.0));
    }
    std::printf("  %-22s wall %s ms\n", name.c_str(),
                trajectory_str(walls, "%.0f").c_str());
    const std::vector<double> w(walls.end() - window, walls.end());
    if (opts.tol_wall > 0.0 &&
        std::all_of(w.begin(), w.end(), [](double v) { return v > 0.0; }) &&
        is_monotone(w) && w.back() > w.front() &&
        w.back() / w.front() > opts.tol_wall) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "wall time drifted %.2fx over %d snapshots (> %.2fx)",
                    w.back() / w.front(), window, opts.tol_wall);
      tally.regression(name + ": " + buf);
    }
  }

  for (const auto& [scenario, title] : series_keys) {
    ++tally.series_compared;
    const std::string where = scenario + " / \"" + title + "\"";

    // Coverage: a series the previous snapshot had must not vanish from
    // the latest, and its sweep must not shrink.
    const Value* prev_series = find_series(previous.snap, scenario, title);
    const Value* last_series = find_series(latest.snap, scenario, title);
    if (prev_series != nullptr && last_series == nullptr) {
      if (opts.allow_missing) {
        tally.warning(where + ": series missing from latest snapshot");
      } else {
        tally.regression(where + ": series missing from latest snapshot");
      }
      continue;
    }
    if (last_series == nullptr) continue;  // long-gone series: ignore
    if (prev_series != nullptr) {
      const int prev_count = count_runs(*prev_series);
      const int last_count = count_runs(*last_series);
      if (last_count < prev_count) {
        tally.regression(where + ": only " + std::to_string(last_count) +
                         " runs recorded (was " +
                         std::to_string(prev_count) + ")");
      }
      const int prev_bad = count_not_ok(*prev_series);
      const int last_bad = count_not_ok(*last_series);
      if (last_bad > prev_bad) {
        tally.regression(where + ": " + std::to_string(last_bad) +
                         " non-ok runs (was " + std::to_string(prev_bad) +
                         ")");
      }
    }

    // Sustained exponent drift across the window: every step in one
    // direction, total beyond tolerance — even when each pairwise step
    // is individually under --tol-exponent.
    if (window >= 3) {
      std::vector<double> fits;
      bool all_fitted = true;
      for (int i = n - window; i < n; ++i) {
        const Value* se =
            find_series(history[static_cast<std::size_t>(i)].snap,
                        scenario, title);
        const Value* fit = se == nullptr ? nullptr
                                         : se->find("fitted_exponent");
        if (fit == nullptr) {
          all_fitted = false;
          break;
        }
        fits.push_back(fit->number_or(0.0));
      }
      if (all_fitted && is_monotone(fits) &&
          std::abs(fits.back() - fits.front()) > opts.tol_exponent) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " (total %.4f > %.4f over %d snapshots)",
                      std::abs(fits.back() - fits.front()),
                      opts.tol_exponent, window);
        tally.regression(where + ": sustained exponent drift " +
                         trajectory_str(fits, "%.4f") + buf);
      }

      // Sustained node-averaged drift at matching scales (opt-in).
      if (opts.tol_avg > 0.0) {
        const Value* last_runs = last_series->find("runs");
        if (last_runs != nullptr && last_runs->is_array()) {
          for (const Value& anchor : last_runs->array) {
            if (!run_ok(anchor)) continue;
            const double scale = anchor.get_number("scale", -1.0);
            std::vector<double> avgs;
            bool complete = true;
            for (int i = n - window; i < n && complete; ++i) {
              const Value* se =
                  find_series(history[static_cast<std::size_t>(i)].snap,
                              scenario, title);
              const Value* runs = se == nullptr ? nullptr
                                                : se->find("runs");
              complete = false;
              if (runs == nullptr || !runs->is_array()) break;
              for (const Value& run : runs->array) {
                if (run.get_number("scale", -2.0) == scale &&
                    run_ok(run)) {
                  avgs.push_back(run.get_number("node_averaged", 0.0));
                  complete = true;
                  break;
                }
              }
            }
            if (complete && avgs.front() > 0.0 && is_monotone(avgs) &&
                std::abs(avgs.back() / avgs.front() - 1.0) >
                    opts.tol_avg) {
              char buf[192];
              std::snprintf(buf, sizeof(buf),
                            "node-averaged at scale %.0f drifted %.1f%% "
                            "over %d snapshots (%s)",
                            scale,
                            100.0 * (avgs.back() / avgs.front() - 1.0),
                            window, trajectory_str(avgs, "%.3f").c_str());
              tally.regression(where + ": " + buf);
            }
          }
        }
      }
    }
  }

  std::printf(
      "history summary: %d series tracked, %d regression(s), "
      "%d warning(s)\n",
      tally.series_compared, tally.regressions, tally.warnings);
  return tally.regressions > 0 ? 1 : 0;
}

}  // namespace lcl::bench
